package faults

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// This file is the scalar half of the adaptive-adversary subsystem: the
// controller that presents a sim.ColonyView of a wrapped scalar colony to a
// FaultSchedule and applies its mutations through the engine's RoundHook,
// plus the stock schedules. The batch half lives in internal/sim/schedule.go
// (the lane's applySchedule pass); both halves step the SAME schedule value
// against the SAME snapshot semantics with the SAME dedicated adversary
// stream, which is what pins adaptive-fault replicates bit-identical across
// engines (the differential harness and FuzzBatchAdaptiveFaultEquivalence
// enforce it).

// Schedule is the adaptive adversary contract, shared verbatim with the
// batch engine: observe the end-of-round colony snapshot, return fault
// mutations, draw only from the dedicated adversary stream.
type Schedule = sim.FaultSchedule

// schedAnt wraps one colony member for the adaptive fault controller. It
// subsumes the static wrappers: the same crash/wake round semantics as
// CrashAnt/SleepAnt (with exact-round crash matching so a restarted ant
// cannot re-fire a passed static crash) and the same luring policy as
// ByzantineAnt (inner is nil for Byzantine victims), plus the
// schedule-driven status transitions the controller applies between rounds.
type schedAnt struct {
	ctrl   *schedCtrl
	idx    int
	inner  sim.Agent // nil exactly when the ant is a Byzantine victim
	status sim.AntStatus
	// base is the inner agent's clock offset: Act/Observe forward round-base,
	// so a woken or restarted inner agent sees round 1 first — the batch
	// engine's initial program state.
	base int
	// Static fault plan (from FaultSpec.Assign): wakeAt > 0 schedules the
	// wake, crashAt > 0 the crash. Zero disables either.
	wakeAt  int
	crashAt int
	// lastNest is the last non-home outcome nest, live or dead — where the
	// corpse wanders after a crash (CrashAnt's tracking, kept for every ant
	// because any ant can crash under a schedule).
	lastNest sim.NestID
	// badNest is the Byzantine lure target (Home until latched or relocated).
	badNest sim.NestID
}

var _ sim.Agent = (*schedAnt)(nil)
var _ sim.RoundHooked = (*schedAnt)(nil)

// RoundHook implements sim.RoundHooked: every ant carries the shared
// controller hook, and the engine installs the first (hence the) one.
func (a *schedAnt) RoundHook() sim.RoundHook { return a.ctrl.hook }

// Act implements sim.Agent. Static transitions fire first — wake at
// round >= wakeAt while still sleeping, crash at round == crashAt while live
// or sleeping — then the status selects the behavior. The crash match is
// exact where CrashAnt's is >=: under a schedule an ant may be restarted
// after its static crash round, and the static crash must not re-fire (the
// batch lane's crash list is matched with == identically).
func (a *schedAnt) Act(round int) sim.Action {
	if a.status == sim.AntSleeping && a.wakeAt > 0 && round >= a.wakeAt {
		a.status = sim.AntLive
		a.base = a.wakeAt - 1
	}
	if (a.status == sim.AntLive || a.status == sim.AntSleeping) && a.crashAt > 0 && round == a.crashAt {
		a.status = sim.AntCrashed
	}
	switch a.status {
	case sim.AntLive:
		return a.inner.Act(round - a.base)
	case sim.AntSleeping:
		return sim.Recruit(false, sim.Home)
	case sim.AntCrashed:
		if a.lastNest != sim.Home {
			return sim.Goto(a.lastNest)
		}
		return sim.Recruit(false, sim.Home)
	default: // AntByzantine
		if a.badNest == sim.Home {
			return sim.Search()
		}
		return sim.Recruit(true, a.badNest)
	}
}

// Observe implements sim.Agent: last-nest tracking for every status (any ant
// can crash later, and a corpse keeps drifting where recruiters drag it),
// the inner agent's fold when live, and the Byzantine first-bad-nest latch.
func (a *schedAnt) Observe(round int, out sim.Outcome) {
	if out.Nest != sim.Home {
		a.lastNest = out.Nest
	}
	switch a.status {
	case sim.AntLive:
		a.inner.Observe(round-a.base, out)
	case sim.AntByzantine:
		if a.badNest == sim.Home && out.Quality == 0 && out.Nest != sim.Home {
			a.badNest = out.Nest
		}
	}
}

// Faulty implements the core.Faulty contract: crashed and Byzantine ants are
// census-excluded, sleeping ants count.
func (a *schedAnt) Faulty() bool {
	return a.status == sim.AntCrashed || a.status == sim.AntByzantine
}

// Committed delegates to the inner agent while the ant is censused (live or
// sleeping; a sleeper's inner agent has never acted and reports
// uncommitted), and reports no commitment for crashed or Byzantine ants.
func (a *schedAnt) Committed() (sim.NestID, bool) {
	switch a.status {
	case sim.AntCrashed, sim.AntByzantine:
		return sim.Home, false
	}
	if com, ok := a.inner.(committer); ok {
		return com.Committed()
	}
	return sim.Home, false
}

// schedDecider is a schedAnt over a deciding inner agent, forwarding the
// verdict for the same census reason as crashDecider/sleepDecider.
type schedDecider struct{ *schedAnt }

// Decided forwards the inner agent's verdict while censused and reports
// false for faulty statuses (the census never consults those anyway).
func (a schedDecider) Decided() bool {
	switch a.status {
	case sim.AntCrashed, sim.AntByzantine:
		return false
	}
	return a.inner.(decider).Decided()
}

// schedCtrl drives one FaultSchedule over a wrapped scalar colony. One
// controller serves one replicate: Spec.WrapAgents builds it fresh per seed,
// mirroring the batch lane's per-replicate schedule reset.
type schedCtrl struct {
	sched   Schedule
	adv     *rng.Source
	rebuild func(seed uint64) ([]sim.Agent, error)
	seed    uint64
	ants    []*schedAnt
	decides bool // the inner algorithm decides (mirrors Program.Decides)
	ops     []sim.FaultOp
	commit  []int // commitment census scratch, (k+1)-sized at first hook
}

// hook is the controller's sim.RoundHook: recompute the census snapshot
// (exactly core.TakeCensus's semantics — faulty ants skipped, commitments
// range-checked, decided counted over censused deciders), step the schedule
// on it, and apply the returned mutations. It runs after the round's observe
// loop and before the caller's convergence predicate — the batch lane's
// applySchedule position.
func (c *schedCtrl) hook(e *sim.Engine, round int) error {
	k := e.K()
	if len(c.commit) != k+1 {
		c.commit = make([]int, k+1)
	}
	for i := range c.commit {
		c.commit[i] = 0
	}
	alive, crashed, faulty := 0, 0, 0
	decided := -1
	if c.decides {
		decided = 0
	}
	for _, a := range c.ants {
		switch a.status {
		case sim.AntCrashed:
			crashed++
			faulty++
			continue
		case sim.AntByzantine:
			faulty++
			continue
		}
		alive++
		nest := sim.Home
		if n, committed := a.Committed(); committed && n >= 1 && int(n) <= k {
			nest = n
		}
		c.commit[nest]++
		if c.decides {
			if d, ok := a.inner.(decider); ok && d.Decided() {
				decided++
			}
		}
	}
	view := schedView{
		ctrl: c, e: e, round: round,
		alive: alive, crashed: crashed, faulty: faulty, decided: decided,
	}
	ops := c.sched.Step(&view, c.adv, c.ops[:0])
	c.ops = ops[:0]

	// Apply in order, validating eligibility exactly like the batch lane's
	// applySchedule. A restart adopts a pristine agent from a fresh rebuild
	// of the colony at the replicate seed: per-ant streams are split (never
	// consumed) off the builder root, so pristine[i]'s stream is bit-for-bit
	// the stream ant i was born with — which is exactly how the batch lane
	// re-seeds the restarted ant's stream. The rebuild is amortized once per
	// hook invocation that restarts anything.
	var pristine []sim.Agent
	for _, op := range ops {
		i := int(op.Ant)
		if i < 0 || i >= len(c.ants) {
			return fmt.Errorf("faults: schedule %q: ant %d out of range 0..%d", c.sched.Name(), i, len(c.ants)-1)
		}
		a := c.ants[i]
		switch op.Kind {
		case sim.FaultCrash:
			switch a.status {
			case sim.AntCrashed:
				return fmt.Errorf("faults: schedule %q: crash(%d): ant already crashed", c.sched.Name(), i)
			case sim.AntByzantine:
				return fmt.Errorf("faults: schedule %q: crash(%d): ant is Byzantine", c.sched.Name(), i)
			}
			a.status = sim.AntCrashed
		case sim.FaultRestart:
			if a.status != sim.AntCrashed {
				return fmt.Errorf("faults: schedule %q: restart(%d): ant is not crashed", c.sched.Name(), i)
			}
			if pristine == nil {
				if c.rebuild == nil {
					return fmt.Errorf("faults: schedule %q requests a restart but Spec.Rebuild is nil (the scalar path needs the colony builder to revive ants)", c.sched.Name())
				}
				var err error
				if pristine, err = c.rebuild(c.seed); err != nil {
					return fmt.Errorf("faults: schedule %q: rebuilding colony for restart: %w", c.sched.Name(), err)
				}
				if len(pristine) != len(c.ants) {
					return fmt.Errorf("faults: schedule %q: rebuild returned %d agents, want %d", c.sched.Name(), len(pristine), len(c.ants))
				}
			}
			a.inner = pristine[i]
			a.status = sim.AntLive
			a.base = round // inner sees round 1 next round
			a.lastNest = sim.Home
		case sim.FaultRelocate:
			if a.status != sim.AntByzantine {
				return fmt.Errorf("faults: schedule %q: relocate(%d): ant is not Byzantine", c.sched.Name(), i)
			}
			if op.Nest < 1 || int(op.Nest) > k {
				return fmt.Errorf("faults: schedule %q: relocate(%d, %d): nest out of range 1..%d", c.sched.Name(), i, op.Nest, k)
			}
			a.badNest = op.Nest
			// The relocated lurer will recruit(1, Nest) without ever visiting:
			// teach the nest out of band so strict §2 validation licenses it
			// (a real lurer would simply walk there first).
			e.Teach(i, op.Nest)
		default:
			return fmt.Errorf("faults: schedule %q: unknown fault op kind %d", c.sched.Name(), op.Kind)
		}
	}
	return nil
}

// schedView adapts one hook invocation's census snapshot to sim.ColonyView.
type schedView struct {
	ctrl    *schedCtrl
	e       *sim.Engine
	round   int
	alive   int
	crashed int
	faulty  int
	decided int
}

var _ sim.ColonyView = (*schedView)(nil)

func (v *schedView) Round() int   { return v.round }
func (v *schedView) N() int       { return len(v.ctrl.ants) }
func (v *schedView) K() int       { return v.e.K() }
func (v *schedView) Alive() int   { return v.alive }
func (v *schedView) Faulty() int  { return v.faulty }
func (v *schedView) Crashed() int { return v.crashed }
func (v *schedView) Decided() int { return v.decided }

func (v *schedView) Census(nest sim.NestID) int {
	if nest < 0 || int(nest) >= len(v.ctrl.commit) {
		return 0
	}
	return v.ctrl.commit[nest]
}

func (v *schedView) Quality(nest sim.NestID) float64 {
	if nest < 1 || int(nest) > v.e.K() {
		return 0
	}
	return v.e.Env().Quality(nest)
}

func (v *schedView) Status(i int) sim.AntStatus { return v.ctrl.ants[i].status }

func (v *schedView) Committed(i int) sim.NestID {
	a := v.ctrl.ants[i]
	switch a.status {
	case sim.AntCrashed, sim.AntByzantine:
		return sim.Home
	}
	if n, committed := a.Committed(); committed && n >= 1 && int(n) <= v.e.K() {
		return n
	}
	return sim.Home
}

// TargetedCrash is the adaptive decapitation adversary: each round it crashes
// up to PerRound live ants committed to the current leading nest (the
// candidate with the largest censused commitment; ties break to the lowest
// nest id, and no one crashes while no ant is committed), in ascending ant
// order, until Budget total crashes have been spent. It is draw-free — its
// policy is a pure function of the colony view — so it consumes nothing from
// the adversary stream.
type TargetedCrash struct {
	// PerRound caps crashes per round; values <= 0 select 1.
	PerRound int
	// Budget caps total crashes; values <= 0 leave the budget unlimited
	// (the adversary can eventually grind the whole colony down).
	Budget int

	crashed int
}

var _ Schedule = (*TargetedCrash)(nil)

// Name implements Schedule.
func (t *TargetedCrash) Name() string { return "targeted-crash" }

// Step implements Schedule.
func (t *TargetedCrash) Step(v sim.ColonyView, _ *rng.Source, ops []sim.FaultOp) []sim.FaultOp {
	k := v.K()
	lead := sim.Home
	best := 0
	for nest := 1; nest <= k; nest++ {
		if c := v.Census(sim.NestID(nest)); c > best {
			best = c
			lead = sim.NestID(nest)
		}
	}
	if lead == sim.Home {
		return ops
	}
	per := t.PerRound
	if per <= 0 {
		per = 1
	}
	n := v.N()
	for i := 0; i < n && per > 0; i++ {
		if t.Budget > 0 && t.crashed >= t.Budget {
			break
		}
		if v.Status(i) == sim.AntLive && v.Committed(i) == lead {
			ops = append(ops, sim.FaultOp{Kind: sim.FaultCrash, Ant: int32(i)})
			t.crashed++
			per--
		}
	}
	return ops
}

// AdaptiveLurer re-aims the colony's Byzantine lurers at the front-running
// BAD nest: whichever zero-quality candidate currently holds the largest
// censused commitment (ties to the lowest nest id; with no commitments
// anywhere the lowest bad nest is targeted, so lurers coordinate from round
// one instead of latching whatever their searches found). Relocations fire
// only when the target changes. Draw-free; pair it with a
// ByzantineFraction > 0 spec — with no Byzantine ants it is a no-op.
type AdaptiveLurer struct {
	last sim.NestID
}

var _ Schedule = (*AdaptiveLurer)(nil)

// Name implements Schedule.
func (l *AdaptiveLurer) Name() string { return "adaptive-lurer" }

// Step implements Schedule.
func (l *AdaptiveLurer) Step(v sim.ColonyView, _ *rng.Source, ops []sim.FaultOp) []sim.FaultOp {
	k := v.K()
	target := sim.Home
	best := -1
	for nest := 1; nest <= k; nest++ {
		id := sim.NestID(nest)
		if v.Quality(id) > 0 {
			continue
		}
		if c := v.Census(id); c > best {
			best = c
			target = id
		}
	}
	if target == sim.Home || target == l.last {
		return ops
	}
	n := v.N()
	for i := 0; i < n; i++ {
		if v.Status(i) == sim.AntByzantine {
			ops = append(ops, sim.FaultOp{Kind: sim.FaultRelocate, Ant: int32(i), Nest: target})
		}
	}
	l.last = target
	return ops
}

// Churn is the crash-recovery adversary: every live ant crashes with
// probability CrashProb each round, and every crashed ant restarts with
// probability 1/MeanDowntime — a geometric downtime with the given mean, the
// discrete-round form of exponential restart. Draws come from the dedicated
// adversary stream, one Bernoulli per eligible ant in ascending ant order, so
// both engines consume the stream identically. MeanDowntime <= 1 restarts
// every corpse after exactly one down round; MeanDowntime = 0 disables
// restarts (Churn degenerates to random attrition).
type Churn struct {
	CrashProb    float64
	MeanDowntime float64
}

var _ Schedule = Churn{}

// Name implements Schedule.
func (Churn) Name() string { return "churn" }

// Step implements Schedule.
func (c Churn) Step(v sim.ColonyView, adv *rng.Source, ops []sim.FaultOp) []sim.FaultOp {
	restartP := 0.0
	if c.MeanDowntime > 0 {
		restartP = 1 / c.MeanDowntime
		if restartP > 1 {
			restartP = 1
		}
	}
	n := v.N()
	for i := 0; i < n; i++ {
		switch v.Status(i) {
		case sim.AntLive:
			// The gate is engine-agnostic (both engines agree on Status), and
			// Bernoulli at p <= 0 consumes nothing, so the CrashProb > 0 check
			// is a pure fast path.
			if c.CrashProb > 0 && adv.Bernoulli(c.CrashProb) {
				ops = append(ops, sim.FaultOp{Kind: sim.FaultCrash, Ant: int32(i)})
			}
		case sim.AntCrashed:
			if restartP > 0 && adv.Bernoulli(restartP) {
				ops = append(ops, sim.FaultOp{Kind: sim.FaultRestart, Ant: int32(i)})
			}
		}
	}
	return ops
}
