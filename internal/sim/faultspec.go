package sim

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
)

// FaultSpec is the compiled form of a fault-injection plan: the per-colony
// knobs from which a batch lane materializes its crash-round, Byzantine and
// sleep columns at replicate start. It is the lowering target of the faults
// package's declarative Spec (which also lowers to the scalar wrappers); both
// paths derive the victim assignment from the SAME stream via Assign, which is
// what keeps a faulted batch replicate bit-identical to the wrapped scalar
// colony.
//
// Fault lanes force the general execution path (Program.Lockstep reports
// false): faulted ants leave their program states for synthetic engine states
// (a crashed ant walks to its last known nest or idles at home, a Byzantine
// ant searches for a bad nest and then lures for it forever, a sleeping ant
// waits at home until its wake round), so the colony is heterogeneous even
// under an otherwise-lockstep program.
type FaultSpec struct {
	// CrashFraction of the colony crashes at a uniformly random round in
	// [1, CrashWindow] (the §6 crash-fault extension). A crashed ant wanders
	// to the last candidate nest it knew — or waits passively at home — and
	// never acts on observations again; it still occupies the model and
	// perturbs population counts.
	CrashFraction float64
	// CrashWindow is the last round by which scheduled crashes fire; values
	// <= 0 select DefaultFaultWindow.
	CrashWindow int
	// ByzantineFraction of the colony is replaced by luring adversaries that
	// search until they find a bad nest and then actively recruit for it
	// every round (§6 malicious faults).
	ByzantineFraction float64
	// SleepFraction of the colony starts asleep: an idle reserve that waits
	// passively at home and joins the emigration only at its wake round,
	// drawn uniformly from [2, SleepWindow+1] (the idle-pool scenario of
	// Afek–Gordon–Sulamy's "Idle Ants Have a Role"). Sleeping ants are not
	// faulty — the census counts them — so convergence requires the reserve
	// to wake and join.
	SleepFraction float64
	// SleepWindow bounds the wake rounds; values <= 0 select
	// DefaultFaultWindow.
	SleepWindow int
	// Salt is the Split index of the fault stream: victims and their rounds
	// are drawn from rng.New(seed).Split(Salt), exactly like the scalar
	// wrapper builders. Choose a salt disjoint from the engine's stream
	// indices (0, 1, 2) so fault draws decorrelate from the simulation.
	Salt uint64
	// NewSchedule, when non-nil, attaches an adaptive adversary: a fresh
	// FaultSchedule is built per replicate and stepped at the end of every
	// round with the lane's ColonyView and the dedicated adversary stream
	// rng.New(seed).Split(EffectiveScheduleSalt()). The scalar wrapper layer
	// (faults.Spec) builds the identical schedule and consumes the identical
	// stream, which is what keeps adaptive-fault replicates bit-identical
	// across engines. The factory must be deterministic: calling it twice
	// must yield schedules that draw and mutate identically.
	NewSchedule func() FaultSchedule
	// ScheduleSalt is the Split index of the adversary stream; 0 selects
	// Salt+1 so the schedule's draws never collide with the victim
	// assignment's (see EffectiveScheduleSalt).
	ScheduleSalt uint64
}

// DefaultFaultWindow is the crash/sleep scheduling window used when the spec
// leaves the window at 0, matching the scalar faults.Plan default.
const DefaultFaultWindow = 64

// batchSyntheticStates is the number of engine-owned states a faulted lane
// appends after the program's own (sleeping, Byzantine-searching,
// Byzantine-luring, crashed), which is why faulted programs are capped at
// 256 - batchSyntheticStates states.
const batchSyntheticStates = 4

// Enabled reports whether the spec injects any faults at all — static
// fractions or an adaptive schedule. A zero FaultSpec is disabled and costs
// the engine nothing.
func (f FaultSpec) Enabled() bool {
	return f.CrashFraction > 0 || f.ByzantineFraction > 0 || f.SleepFraction > 0 ||
		f.NewSchedule != nil
}

// Validate checks the spec's fractions and windows.
func (f FaultSpec) Validate() error {
	if f.CrashFraction < 0 || f.ByzantineFraction < 0 || f.SleepFraction < 0 {
		return fmt.Errorf("sim: negative fault fraction %+v", f)
	}
	if sum := f.CrashFraction + f.ByzantineFraction + f.SleepFraction; sum > 1 {
		return fmt.Errorf("sim: fault fractions sum to %v > 1", sum)
	}
	if f.CrashWindow < 0 || f.SleepWindow < 0 {
		return fmt.Errorf("sim: negative fault window (crash %d, sleep %d)", f.CrashWindow, f.SleepWindow)
	}
	return nil
}

// EffectiveScheduleSalt is the Split index the adversary stream is derived
// with: ScheduleSalt when set, else Salt+1. The default keeps the schedule's
// stream disjoint from the victim-assignment stream (Salt) without the
// caller having to pick a second salt; both engines derive the stream from
// this one value, so they can never disagree on the adversary's randomness.
func (f FaultSpec) EffectiveScheduleSalt() uint64 {
	if f.ScheduleSalt != 0 {
		return f.ScheduleSalt
	}
	return f.Salt + 1
}

// crashWindow returns the effective crash scheduling window.
func (f FaultSpec) crashWindow() int {
	if f.CrashWindow <= 0 {
		return DefaultFaultWindow
	}
	return f.CrashWindow
}

// sleepWindow returns the effective wake scheduling window.
func (f FaultSpec) sleepWindow() int {
	if f.SleepWindow <= 0 {
		return DefaultFaultWindow
	}
	return f.SleepWindow
}

// Assign draws the victim assignment for an n-ant colony from src into the
// caller's columns: crashRound[i] > 0 schedules ant i to crash at the start
// of that round, byz[i] = 1 replaces ant i by a Byzantine adversary, and
// wakeRound[i] > 1 puts ant i to sleep until the start of that round. perm is
// scratch for the victim permutation. The columns must each hold at least n
// entries; every entry is (re)written. Assign performs no allocations.
//
// This is the ONE canonical consumption of the fault stream: a uniform victim
// permutation, then one crash-round draw per crash victim in permutation
// order, then (draw-free) the Byzantine victims, then one wake-round draw per
// sleeping victim. The scalar faults.Spec wrapper builder delegates here, so
// the batch lane's columns and the scalar wrappers can never disagree on who
// fails when — and with SleepFraction = 0 the sequence is exactly the legacy
// faults.Plan.Apply stream (rng.Source.PermInto32 is draw-identical to Perm,
// a pinned property).
func (f FaultSpec) Assign(n int, src *rng.Source, crashRound, wakeRound []int32, byz []uint8, perm []int32) {
	crashRound = crashRound[:n]
	wakeRound = wakeRound[:n]
	byz = byz[:n]
	perm = perm[:n]
	for i := 0; i < n; i++ {
		crashRound[i] = 0
		wakeRound[i] = 0
		byz[i] = 0
	}
	nCrash := int(f.CrashFraction * float64(n))
	nByz := int(f.ByzantineFraction * float64(n))
	nSleep := int(f.SleepFraction * float64(n))
	src.PermInto32(perm)
	idx := 0
	for ; idx < nCrash; idx++ {
		crashRound[perm[idx]] = int32(1 + src.Intn(f.crashWindow()))
	}
	for ; idx < nCrash+nByz; idx++ {
		byz[perm[idx]] = 1
	}
	for ; idx < nCrash+nByz+nSleep; idx++ {
		// Wake rounds start at 2: a sleeper sleeps through at least round 1
		// (a wake round of 1 would make the sleep wrapper a no-op).
		wakeRound[perm[idx]] = int32(2 + src.Intn(f.sleepWindow()))
	}
}
