package faults

import (
	"testing"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// recordingAgent records every round number its Act/Observe see, so tests can
// pin the clock a wrapper presents to its inner agent.
type recordingAgent struct {
	actRounds []int
	obsRounds []int
	decided   bool
	committed bool
	nest      sim.NestID
}

func (r *recordingAgent) Act(round int) sim.Action {
	r.actRounds = append(r.actRounds, round)
	return sim.Search()
}

func (r *recordingAgent) Observe(round int, out sim.Outcome) {
	r.obsRounds = append(r.obsRounds, round)
}

func (r *recordingAgent) Decided() bool { return r.decided }

func (r *recordingAgent) Committed() (sim.NestID, bool) { return r.nest, r.committed }

// TestByzantineAntDrawsNothing pins the stream-consumption contract the batch
// engine's fault lane relies on: a ByzantineAnt NEVER draws from its private
// source. Its policy is deterministic given its outcomes, so the lane can
// skip materializing per-ant streams for Byzantine ants and stay bit-identical
// to the scalar wrapper. If this test fails, the lane needs a per-ant stream
// column for Byzantine ants before the contract can change.
func TestByzantineAntDrawsNothing(t *testing.T) {
	t.Parallel()
	src := rng.New(11).Split(42)
	before := src.State()
	b := NewByzantineAnt(src)
	// Drive the full policy: hunt, reject a good nest, latch a bad one, lure.
	for round := 1; round <= 50; round++ {
		b.Act(round)
		switch round {
		case 1:
			b.Observe(round, sim.Outcome{Nest: 1, Quality: 1})
		case 2:
			b.Observe(round, sim.Outcome{Nest: 2, Quality: 0})
		default:
			b.Observe(round, sim.Outcome{Nest: 2, Quality: 0, Count: round})
		}
	}
	if b.badNest != 2 {
		t.Fatalf("adversary latched nest %d, want the first bad nest 2", b.badNest)
	}
	if after := src.State(); after != before {
		t.Fatalf("ByzantineAnt drew from its source: state %v -> %v", before, after)
	}
}

// TestCrashAntAtFirstRound pins the boundary case of a crash scheduled at
// round 1: the inner agent must never act at all.
func TestCrashAntAtFirstRound(t *testing.T) {
	t.Parallel()
	inner := &recordingAgent{}
	c, err := NewCrashAnt(inner, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Act(1)
	c.Observe(1, sim.Outcome{Nest: 3})
	if len(inner.actRounds) != 0 || len(inner.obsRounds) != 0 {
		t.Fatalf("inner agent ran before a round-1 crash: acts %v, observes %v",
			inner.actRounds, inner.obsRounds)
	}
	if !c.Faulty() {
		t.Fatal("round-1 crash not faulty")
	}
}

// TestCrashAntAfterCommit pins that a crash erases an existing commitment:
// the corpse keeps walking to its last nest, but the census must not count it
// as committed (core.TakeCensus drops Faulty ants from Total entirely).
func TestCrashAntAfterCommit(t *testing.T) {
	t.Parallel()
	inner := &recordingAgent{committed: true, nest: 2}
	c, err := wrapCrash(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.(sim.Agent).Act(3)
	c.(sim.Agent).Observe(3, sim.Outcome{Nest: 2, Quality: 1})
	if nest, ok := c.(*recordingAgent); ok {
		t.Fatalf("wrapCrash returned the inner agent unwrapped: %v", nest)
	}
	if nestID, ok := c.(interface {
		Committed() (sim.NestID, bool)
	}).Committed(); !ok || nestID != 2 {
		t.Fatalf("pre-crash commitment = (%v, %v), want (2, true)", nestID, ok)
	}
	c.(sim.Agent).Act(4) // crash fires
	if nestID, ok := c.(interface {
		Committed() (sim.NestID, bool)
	}).Committed(); ok {
		t.Fatalf("post-crash commitment = (%v, true), want none", nestID)
	}
}

// TestCrashDeciderForwardsVerdict pins the regression fixed alongside the
// fault-lane work: wrapping a DECIDING agent must preserve its decider
// contract until the crash, or the Decided == Total convergence gate can
// never close for algorithms like Algorithm 2.
func TestCrashDeciderForwardsVerdict(t *testing.T) {
	t.Parallel()
	inner := &recordingAgent{decided: true}
	c, err := wrapCrash(inner, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := c.(interface{ Decided() bool })
	if !ok {
		t.Fatal("wrapping a deciding agent lost the Decided method")
	}
	if !d.Decided() {
		t.Fatal("pre-crash verdict not forwarded")
	}
	c.(sim.Agent).Act(5)
	if d.Decided() {
		t.Fatal("post-crash ant still reports decided")
	}

	// A non-deciding inner agent must NOT gain the method.
	plain, err := wrapCrash(algo.NewSimpleAnt(10, rng.New(1)), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.(interface{ Decided() bool }); ok {
		t.Fatal("wrapping a non-deciding agent fabricated a Decided method")
	}
}

// TestSleepDeciderForwardsVerdict is the sleep-side twin of the crash test.
func TestSleepDeciderForwardsVerdict(t *testing.T) {
	t.Parallel()
	inner := &recordingAgent{decided: true}
	s, err := wrapSleep(inner, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := s.(interface{ Decided() bool })
	if !ok {
		t.Fatal("wrapping a deciding agent lost the Decided method")
	}
	if !d.Decided() {
		t.Fatal("verdict not forwarded through the sleep wrapper")
	}
	plain, err := wrapSleep(algo.NewSimpleAnt(10, rng.New(2)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.(interface{ Decided() bool }); ok {
		t.Fatal("wrapping a non-deciding agent fabricated a Decided method")
	}
}

func TestNewSleepAntValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewSleepAnt(nil, 5); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewSleepAnt(&recordingAgent{}, 1); err == nil {
		t.Fatal("wake round 1 accepted (would never sleep)")
	}
}

// TestSleepAntClockTranslation pins the wrapper's logical-clock contract: the
// inner agent sees round 1 on its first post-wake call and counts up from
// there, exactly as the batch lane wakes a sleeper into the program's initial
// state. Round-keyed agents (OptimalAnt fires its global search at round 1
// only) depend on this.
func TestSleepAntClockTranslation(t *testing.T) {
	t.Parallel()
	inner := &recordingAgent{}
	s, err := NewSleepAnt(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 6; round++ {
		act := s.Act(round)
		if round < 4 {
			if act.Kind != sim.ActionRecruit || act.Active || act.Nest != sim.Home {
				t.Fatalf("round %d: sleeping act = %+v, want recruit(0, home)", round, act)
			}
			if s.Awake(round) {
				t.Fatalf("round %d: Awake before wake round", round)
			}
		} else if !s.Awake(round) {
			t.Fatalf("round %d: not awake at/after wake round", round)
		}
		s.Observe(round, sim.Outcome{Nest: 1})
	}
	wantRounds := []int{1, 2, 3}
	if len(inner.actRounds) != len(wantRounds) {
		t.Fatalf("inner saw %d acts %v, want %v", len(inner.actRounds), inner.actRounds, wantRounds)
	}
	for i, want := range wantRounds {
		if inner.actRounds[i] != want || inner.obsRounds[i] != want {
			t.Fatalf("inner clock = acts %v observes %v, want %v (translated to start at 1)",
				inner.actRounds, inner.obsRounds, wantRounds)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	t.Parallel()
	if err := (Spec{CrashFraction: 0.3, ByzantineFraction: 0.3, SleepFraction: 0.4}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := (Spec{CrashFraction: 0.6, SleepFraction: 0.6}).Validate(); err == nil {
		t.Fatal("over-unity fractions accepted")
	}
	if err := (Spec{SleepFraction: -0.1}).Validate(); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

// TestSpecWrapAgents checks victim counts and disjointness on the scalar
// lowering, plus the disabled-spec fast path.
func TestSpecWrapAgents(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	agents, err := (algo.Simple{}).Build(100, env, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		CrashFraction:     0.2,
		CrashWindow:       10,
		ByzantineFraction: 0.1,
		SleepFraction:     0.15,
		SleepWindow:       12,
		Salt:              3,
	}
	wrapped, err := spec.WrapAgents(77, agents)
	if err != nil {
		t.Fatal(err)
	}
	crashes, byz, sleepers := 0, 0, 0
	for _, a := range wrapped {
		switch a.(type) {
		case *CrashAnt:
			crashes++
		case *ByzantineAnt:
			byz++
		case *SleepAnt:
			sleepers++
		}
	}
	if crashes != 20 || byz != 10 || sleepers != 15 {
		t.Fatalf("victims: %d crash, %d byzantine, %d asleep; want 20, 10, 15", crashes, byz, sleepers)
	}

	// A disabled spec must return the colony untouched.
	fresh, err := (algo.Simple{}).Build(10, env, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	same, err := Spec{Salt: 9}.WrapAgents(77, fresh)
	if err != nil {
		t.Fatal(err)
	}
	for i := range same {
		if same[i] != fresh[i] {
			t.Fatalf("disabled spec rewrote agent %d", i)
		}
	}

	if _, err := (Spec{CrashFraction: 2}).WrapAgents(77, fresh); err == nil {
		t.Fatal("invalid spec applied")
	}
}

// TestSpecMatchesLegacyPlanStream pins the compatibility claim in Spec's doc
// comment: with SleepFraction 0, Spec{..., Salt: s}.WrapAgents(seed, ...)
// consumes the fault stream exactly like the legacy
// Plan{...}.Apply(rng.New(seed).Split(s)) — same victims, same crash rounds.
func TestSpecMatchesLegacyPlanStream(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0})
	const n, seed, salt = 120, uint64(13), uint64(21)
	build := func() []sim.Agent {
		agents, err := (algo.Simple{}).Build(n, env, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return agents
	}
	spec := Spec{CrashFraction: 0.25, CrashWindow: 18, ByzantineFraction: 0.1, Salt: salt}
	specWrapped, err := spec.WrapAgents(seed, build())
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{CrashFraction: 0.25, CrashWindow: 18, ByzantineFraction: 0.1}
	planWrapped, err := plan.Apply(rng.New(seed).Split(salt))(build())
	if err != nil {
		t.Fatal(err)
	}
	crashRoundOf := func(a sim.Agent) (int, bool) {
		switch c := a.(type) {
		case *CrashAnt:
			return c.crashRound, true
		case crashDecider:
			return c.crashRound, true
		}
		return 0, false
	}
	for i := 0; i < n; i++ {
		sr, sc := crashRoundOf(specWrapped[i])
		pr, pc := crashRoundOf(planWrapped[i])
		if sc != pc || sr != pr {
			t.Fatalf("ant %d: spec crash (%d, %v) != plan crash (%d, %v)", i, sr, sc, pr, pc)
		}
		_, sb := specWrapped[i].(*ByzantineAnt)
		_, pb := planWrapped[i].(*ByzantineAnt)
		if sb != pb {
			t.Fatalf("ant %d: spec byzantine %v != plan byzantine %v", i, sb, pb)
		}
	}
}
