// Package outscope lives outside the engine import paths: the analyzer
// must stay silent even on patterns it would flag in scope. The fixture
// has no want comments, so any diagnostic fails the test.
package outscope

import "time"

func clock(m map[int]int) int64 {
	total := int64(0)
	for k := range m {
		total += int64(k)
	}
	return total + time.Now().Unix()
}
