package algo

import (
	"fmt"
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
)

// fuzzDiffCase derives a bounded differential-harness configuration from raw
// fuzz words: the algorithm (all seven compiled forms), colony size, nest
// count, binary or graded quality vector and the extension parameters are all
// decoded from the inputs, so the fuzzer explores the same space as
// randomDiffCases but steered by coverage. The decoding is total — every
// input maps to a valid case — which keeps the target mutation-friendly.
func fuzzDiffCase(seed uint64, algoPick, nRaw, kRaw, qualBits, param uint16) diffCase {
	n := 4 + int(nRaw%60)
	k := 1 + int(kRaw%5)
	quals := make([]float64, k)
	anyGood := false
	for j := 0; j < k; j++ {
		if qualBits&(1<<j) != 0 {
			quals[j] = 1
			anyGood = true
		}
	}
	if !anyGood {
		quals[int(qualBits)%k] = 1 // environments need at least one good nest
	}
	if param%3 == 1 {
		// Graded qualities: deterministic non-binary values derived from the
		// inputs, exercising the quality-weighted and threshold opcodes away
		// from the {0, 1} corners.
		for j := range quals {
			if quals[j] > 0 {
				quals[j] = 0.1 + 0.8*float64((int(param/3)+j*7)%100)/100
			}
		}
	}
	var a core.Algorithm
	switch algoPick % 7 {
	case 0:
		a = Simple{}
	case 1:
		a = SimplePFSM{}
	case 2:
		a = Optimal{}
	case 3:
		a = Optimal{Literal: true}
	case 4:
		a = Adaptive{Tau: 1 + int(param%4), FloorDiv: float64(2 + param%7)}
	case 5:
		a = QualityAware{}
	case 6:
		a = ApproxN{Delta: float64(param%900) / 1000}
	}
	return diffCase{
		name:      fmt.Sprintf("fuzz/%s/n%d/k%d", a.Name(), n, k),
		algo:      a,
		n:         n,
		env:       sim.MustEnvironment(quals),
		seeds:     []uint64{seed},
		maxRounds: 48,
	}
}

// FuzzBatchEquivalence fuzzes compiled-program execution against the scalar
// oracle: any input on which the batch engine's per-round populations or
// commitments diverge from the scalar agents is a bug. The checked-in corpus
// under testdata/fuzz seeds one representative case per compiled algorithm;
// CI runs a short -fuzz smoke on top of the corpus replay that plain go test
// performs.
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint16(28), uint16(1), uint16(1), uint16(0))    // simple, k=2
	f.Add(uint64(7), uint16(2), uint16(60), uint16(3), uint16(5), uint16(0))    // optimal, k=4
	f.Add(uint64(42), uint16(3), uint16(12), uint16(0), uint16(0), uint16(2))   // optimal literal, k=1
	f.Add(uint64(9), uint16(4), uint16(40), uint16(2), uint16(3), uint16(13))   // adaptive, graded qualities
	f.Add(uint64(11), uint16(5), uint16(50), uint16(3), uint16(9), uint16(7))   // quality-aware, graded
	f.Add(uint64(13), uint16(6), uint16(33), uint16(2), uint16(7), uint16(450)) // approxn, δ = 0.45
	f.Add(uint64(17), uint16(6), uint16(24), uint16(1), uint16(2), uint16(0))   // approxn, δ = 0
	f.Fuzz(func(t *testing.T, seed uint64, algoPick, nRaw, kRaw, qualBits, param uint16) {
		assertTraceEquivalence(t, fuzzDiffCase(seed, algoPick, nRaw, kRaw, qualBits, param))
	})
}
