package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "64", "-k", "2", "-good", "1", "-seed", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solved") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "final commitments") {
		t.Fatalf("commitments missing:\n%s", out.String())
	}
}

func TestRunWithPlotAndExtras(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "96", "-k", "3", "-good", "2", "-algo", "optimal",
		"-plot", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "legend:") {
		t.Fatalf("plot missing:\n%s", out.String())
	}
}

func TestRunExplicitNests(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "64", "-nests", "0.2,0.9", "-algo", "quality", "-seed", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "solved") {
		t.Fatalf("quality run failed:\n%s", out.String())
	}
}

func TestRunFaultFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "128", "-k", "2", "-good", "2",
		"-crash", "0.1", "-byz", "0.02", "-jitter", "0.05",
		"-count-noise", "0", "-seed", "7", "-rounds", "4000",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nests", "0.5,banana"}, &out); err == nil {
		t.Fatal("malformed nests accepted")
	}
	if err := run([]string{"-algo", "bogus"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-whatever"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestParseQualities(t *testing.T) {
	qs, err := parseQualities(" 0.1 , 0.9 ,1.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 || qs[0] != 0.1 || qs[2] != 1.0 {
		t.Fatalf("parsed %v", qs)
	}
	if _, err := parseQualities("a,b"); err == nil {
		t.Fatal("junk accepted")
	}
}
