// Command hhsim runs a single house-hunting execution and prints a summary,
// optionally with an ASCII plot of the commitment dynamics.
//
// Examples:
//
//	hhsim -n 512 -k 8 -good 2 -algo simple -seed 42
//	hhsim -n 1024 -k 4 -good 4 -algo optimal -plot
//	hhsim -n 256 -nests 0.2,0.5,0.9 -algo quality -plot
//	hhsim -n 400 -k 4 -good 2 -crash 0.1 -jitter 0.1
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/gmrl/househunt"
	"github.com/gmrl/househunt/internal/faults"
)

// errInvalidFaultFlags names the flag-validation failure for fault plans: any
// -crash/-byz/-sleep/-crash-window/-sleep-window combination the fault spec
// itself would reject (negative fractions, fractions summing past 1, negative
// windows) fails here, at flag-parse time, instead of surfacing later as an
// engine construction error.
var errInvalidFaultFlags = errors.New("invalid fault flags")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hhsim:", err)
		os.Exit(1)
	}
}

// run parses flags and executes one colony; split from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hhsim", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 256, "colony size")
		k          = fs.Int("k", 4, "number of candidate nests (ignored when -nests is set)")
		good       = fs.Int("good", 1, "number of good nests (ignored when -nests is set)")
		nests      = fs.String("nests", "", "comma-separated nest qualities in [0,1], e.g. 0.2,0.5,0.9")
		algoName   = fs.String("algo", "simple", "algorithm: optimal, optimal-literal, simple, simple-pfsm, adaptive, quality, quorum, approxn, spreader")
		seed       = fs.Uint64("seed", 1, "random seed")
		maxRounds  = fs.Int("rounds", 0, "round budget (0 = automatic)")
		plot       = fs.Bool("plot", false, "render an ASCII plot of commitment dynamics")
		concurrent = fs.Bool("concurrent", false, "run each ant as a goroutine")
		countNoise = fs.Float64("count-noise", 0, "unbiased relative count noise sigma (forces simple)")
		flipP      = fs.Float64("flip", 0, "assessment flip probability (forces simple)")
		crash      = fs.Float64("crash", 0, "fraction of ants that crash")
		crashWin   = fs.Int("crash-window", 64, "last round by which scheduled crashes fire")
		byz        = fs.Float64("byz", 0, "fraction of Byzantine ants")
		sleep      = fs.Float64("sleep", 0, "fraction of ants starting as an idle reserve")
		sleepWin   = fs.Int("sleep-window", 64, "last round by which the idle reserve wakes")
		jitter     = fs.Float64("jitter", 0, "per-round hold probability (asynchrony)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate the fault plan exactly as the engines will: the assembled spec
	// must pass the same Validate both lowering paths run, so a bad flag
	// combination dies here with the named error instead of deep in setup.
	faultPlan := faults.Spec{
		CrashFraction: *crash, CrashWindow: *crashWin,
		ByzantineFraction: *byz,
		SleepFraction:     *sleep, SleepWindow: *sleepWin,
	}
	if err := faultPlan.Validate(); err != nil {
		return fmt.Errorf("%w: %v", errInvalidFaultFlags, err)
	}

	opts := []househunt.Option{
		househunt.WithColonySize(*n),
		househunt.WithAlgorithm(househunt.Algorithm(*algoName)),
		househunt.WithSeed(*seed),
		househunt.WithMaxRounds(*maxRounds),
	}
	if *nests != "" {
		qualities, err := parseQualities(*nests)
		if err != nil {
			return err
		}
		opts = append(opts, househunt.WithNests(qualities...))
	} else {
		opts = append(opts, househunt.WithBinaryNests(*k, *good))
	}
	if *plot {
		opts = append(opts, househunt.WithTracing())
	}
	if *concurrent {
		opts = append(opts, househunt.WithConcurrentAnts())
	}
	if *countNoise > 0 {
		opts = append(opts, househunt.WithCountNoise(*countNoise))
	}
	if *flipP > 0 {
		opts = append(opts, househunt.WithAssessmentFlips(*flipP))
	}
	if *crash > 0 {
		opts = append(opts, househunt.WithCrashFaults(*crash, *crashWin))
	}
	if *byz > 0 {
		opts = append(opts, househunt.WithByzantineAnts(*byz))
	}
	if *sleep > 0 {
		opts = append(opts, househunt.WithIdleAnts(*sleep, *sleepWin))
	}
	if *jitter > 0 {
		opts = append(opts, househunt.WithJitter(*jitter, 2))
	}

	res, err := househunt.Run(opts...)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res.Summary())
	fmt.Fprintf(out, "final commitments by nest: %v\n", res.Commitments)
	if *plot {
		fmt.Fprint(out, res.RenderPlot(72, 16))
	}
	return nil
}

// parseQualities parses "0.2,0.5,0.9" into a quality slice.
func parseQualities(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		q, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing nest quality %q: %w", p, err)
		}
		out = append(out, q)
	}
	return out, nil
}
