package workload

import (
	"testing"

	"github.com/gmrl/househunt/internal/sim"
)

func TestBinaryFamilies(t *testing.T) {
	t.Parallel()
	env, err := Binary(8, 3)
	if err != nil || env.K() != 8 || len(env.GoodNests()) != 3 {
		t.Fatalf("Binary(8,3): %v, k=%d good=%v", err, env.K(), env.GoodNests())
	}
	env, err = AllGood(5)
	if err != nil || len(env.GoodNests()) != 5 {
		t.Fatalf("AllGood(5): %v, good=%v", err, env.GoodNests())
	}
	env, err = SingleGood(7)
	if err != nil || len(env.GoodNests()) != 1 {
		t.Fatalf("SingleGood(7): %v, good=%v", err, env.GoodNests())
	}
	if _, err := Binary(0, 0); err == nil {
		t.Fatal("Binary(0,0) accepted")
	}
}

func TestQualityLadder(t *testing.T) {
	t.Parallel()
	env, err := QualityLadder(4, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if env.Quality(1) != 0.2 || env.Quality(4) != 0.8 {
		t.Fatalf("ladder endpoints: %v .. %v", env.Quality(1), env.Quality(4))
	}
	for i := 2; i <= 4; i++ {
		if env.Quality(sim.NestID(i)) <= env.Quality(sim.NestID(i-1)) {
			t.Fatalf("ladder not increasing at %d", i)
		}
	}
	best := env.BestNests()
	if len(best) != 1 || best[0] != 4 {
		t.Fatalf("best = %v, want nest 4", best)
	}
	single, err := QualityLadder(1, 0.5, 0.9)
	if err != nil || single.Quality(1) != 0.9 {
		t.Fatalf("single-rung ladder: %v, q=%v", err, single.Quality(1))
	}
	for _, bad := range [][3]float64{{0, 0.5, 0.9}, {3, 0, 0.9}, {3, 0.9, 0.5}, {3, 0.5, 1.5}} {
		if _, err := QualityLadder(int(bad[0]), bad[1], bad[2]); err == nil {
			t.Fatalf("QualityLadder(%v) accepted", bad)
		}
	}
}

func TestGridPoints(t *testing.T) {
	t.Parallel()
	g := Grid{Ns: []int{64, 128}, Ks: []int{2, 4, 8}, Tag: "t"}
	pts := g.Points()
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	seen := make(map[uint64]bool, len(pts))
	for _, p := range pts {
		if p.Seed == 0 {
			t.Fatal("zero seed")
		}
		if seen[p.Seed] {
			t.Fatalf("duplicate seed for %+v", p)
		}
		seen[p.Seed] = true
	}
}

func TestSeedForStability(t *testing.T) {
	t.Parallel()
	a := SeedFor("exp", 1, 2, 3)
	b := SeedFor("exp", 1, 2, 3)
	if a != b {
		t.Fatal("SeedFor not deterministic")
	}
	if SeedFor("exp", 1, 2, 3) == SeedFor("exp", 1, 2, 4) {
		t.Fatal("rep index did not decorrelate")
	}
	if SeedFor("expA", 1, 2, 3) == SeedFor("expB", 1, 2, 3) {
		t.Fatal("tag did not decorrelate")
	}
	if SeedFor("", 0, 0, 0) == 0 {
		t.Fatal("zero seed produced")
	}
}

func TestPowersOfTwo(t *testing.T) {
	t.Parallel()
	got := PowersOfTwo(3, 6)
	want := []int{8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if PowersOfTwo(5, 3) != nil {
		t.Fatal("inverted range should be nil")
	}
	if PowersOfTwo(-1, 3) != nil {
		t.Fatal("negative exponent should be nil")
	}
}
