package algo

import (
	"fmt"

	"github.com/gmrl/househunt/internal/agent"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// SimplePFSM is Algorithm 3 expressed in the declarative PFSM framework of
// internal/agent rather than as hand-written Go control flow. It exists to
// substantiate the paper's "ants are probabilistic finite state machines"
// model claim and as a cross-validation oracle: for equal seeds it must
// reproduce the hand-written SimpleAnt execution exactly (tested in
// pfsm_test.go), because both draw the same single Bernoulli per recruit
// phase from the same stream.
type SimplePFSM struct{}

// Name implements core.Algorithm.
func (SimplePFSM) Name() string { return "simple-pfsm" }

// States of the Simple PFSM. "active" is encoded in the Quality register
// (quality > 0) exactly as the paper's pseudocode gates it, so the machine
// needs only the three call-phases as states.
const (
	pfsmSearch  agent.StateID = "search"
	pfsmRecruit agent.StateID = "recruit"
	pfsmAssess  agent.StateID = "assess"
)

// newSimpleSpec builds the Algorithm 3 state table for a colony of n ants.
func newSimpleSpec(n int) map[agent.StateID]agent.Spec {
	return map[agent.StateID]agent.Spec{
		pfsmSearch: {
			Emit: func(m *agent.Machine, _ int) sim.Action { return sim.Search() },
			Next: func(m *agent.Machine, _ int, out sim.Outcome) agent.StateID {
				r := m.Regs()
				r.Nest = out.Nest
				r.Count = out.Count
				r.Quality = out.Quality
				return pfsmRecruit
			},
		},
		pfsmRecruit: {
			Emit: func(m *agent.Machine, _ int) sim.Action {
				r := m.Regs()
				b := false
				if r.Quality > 0 {
					b = m.Src().Bernoulli(float64(r.Count) / float64(n))
				}
				return sim.Recruit(b, r.Nest)
			},
			Next: func(m *agent.Machine, _ int, out sim.Outcome) agent.StateID {
				r := m.Regs()
				if out.Nest != r.Nest {
					// Captured: commit to the recruiter's nest and activate.
					r.Nest = out.Nest
					r.Quality = 1
				}
				return pfsmAssess
			},
		},
		pfsmAssess: {
			Emit: func(m *agent.Machine, _ int) sim.Action { return sim.Goto(m.Regs().Nest) },
			Next: func(m *agent.Machine, _ int, out sim.Outcome) agent.StateID {
				m.Regs().Count = out.Count
				return pfsmRecruit
			},
		},
	}
}

// Build implements core.Algorithm.
func (SimplePFSM) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algo: simple-pfsm needs a positive colony, got %d", n)
	}
	if env.K() == 0 {
		return nil, fmt.Errorf("algo: simple-pfsm needs a non-empty environment")
	}
	spec := newSimpleSpec(n)
	agents := make([]sim.Agent, n)
	for i := range agents {
		m, err := agent.NewMachine(pfsmSearch, spec, src.Split(uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("algo: building PFSM ant %d: %w", i, err)
		}
		agents[i] = m
	}
	return agents, nil
}
