package experiment

import (
	"strings"
	"testing"
)

func TestIDsComplete(t *testing.T) {
	t.Parallel()
	ids := IDs()
	if len(ids) != 27 {
		t.Fatalf("suite has %d experiments, want 27", len(ids))
	}
	if ids[0] != "E1" || ids[26] != "E27" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	t.Parallel()
	if _, err := RunExperiment("E99", ScaleSmall); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := RunExperiment("E1", Scale(0)); err == nil {
		t.Fatal("invalid scale accepted")
	}
}

func TestRunExperimentCaseInsensitive(t *testing.T) {
	t.Parallel()
	rep, err := RunExperiment("e1", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E1" {
		t.Fatalf("id = %s", rep.ID)
	}
}

// TestSuiteShapesHold is the headline integration test: every experiment in
// the suite must run at small scale and report that the paper's claimed
// shape holds. This is the executable form of EXPERIMENTS.md.
func TestSuiteShapesHold(t *testing.T) {
	t.Parallel()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := RunExperiment(id, ScaleSmall)
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if !rep.Pass {
				t.Errorf("%s: claimed shape violated:\n%s", id, rep)
			}
			out := rep.String()
			if !strings.Contains(out, rep.ID) || !strings.Contains(out, "paper claim") {
				t.Errorf("%s: malformed report:\n%s", id, out)
			}
			if len(rep.Tables) == 0 {
				t.Errorf("%s: no tables rendered", id)
			}
		})
	}
}
