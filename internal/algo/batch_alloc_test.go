package algo

import (
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
)

// TestBatchRunAllocationsRoundIndependent pins the no-per-round-allocation
// contract at the public API for every real compiled program, with and
// without fault lanes: a Batch.Run's allocation count is fixed per call (lane
// setup, result slices) and must not scale with the round budget. Comparing a
// short run against one ~50× longer on a single worker catches any hot-path
// allocation the sim-internal per-step assertions might miss (worker fan-out,
// replicate reset, fault-column reset, census).
func TestBatchRunAllocationsRoundIndependent(t *testing.T) {
	env := sim.MustEnvironment([]float64{1, 0, 0.7, 0})
	envLone := sim.MustEnvironment([]float64{1, 0, 0, 0})
	const n = 96
	seeds := []uint64{3, 5}
	specs := []struct {
		tag  string
		spec sim.FaultSpec
	}{
		{"", sim.FaultSpec{}},
		{"+faults", sim.FaultSpec{CrashFraction: 0.1, CrashWindow: 24, ByzantineFraction: 0.05, SleepFraction: 0.1, SleepWindow: 24, Salt: 9}},
		// A live adaptive schedule on top of static lanes: the mutation pass
		// (snapshot view, schedule step, crash/restart/relocate application)
		// must stay allocation-free per round too — the ops buffer amortizes,
		// the view is a pointer-shaped conversion, restarts re-seed in place.
		{"+sched", sim.FaultSpec{CrashFraction: 0.1, CrashWindow: 24, ByzantineFraction: 0.05, Salt: 9,
			NewSchedule: func() sim.FaultSchedule { return stressSchedule{} }}},
	}
	for _, a := range compiledInventory() {
		for _, fs := range specs {
			a, fs := a, fs
			t.Run(a.Name()+fs.tag, func(t *testing.T) {
				aEnv := env
				if _, isSpreader := a.(Spreader); isSpreader {
					aEnv = envLone // the spreading process needs a single good nest
				}
				prog, ok := a.(core.BatchCompilable).CompileBatch(n, aEnv)
				if !ok {
					t.Fatalf("%s did not compile", a.Name())
				}
				prog.Params.Faults = fs.spec
				b, err := sim.NewBatch(aEnv, prog, n, sim.WithBatchWorkers(1))
				if err != nil {
					t.Fatal(err)
				}
				run := func(rounds int) float64 {
					// The window above the budget forces every replicate to run
					// the full budget, so the round counts actually differ.
					return testing.AllocsPerRun(5, func() {
						if _, err := b.Run(seeds, rounds, rounds+1); err != nil {
							t.Fatal(err)
						}
					})
				}
				run(200) // warm-up: one-time lazy growth inside the engine, at the largest budget
				short := run(4)
				long := run(200)
				// A genuine per-round allocation would add ~196 allocs between
				// the two budgets; the +2 tolerance absorbs runtime jitter (GC
				// bookkeeping under full-suite heap pressure) without letting
				// any hot-path leak through.
				if long > short+2 {
					t.Errorf("%s%s: allocations grew with the round budget: %.1f at 4 rounds, %.1f at 200",
						a.Name(), fs.tag, short, long)
				}
			})
		}
	}
}
