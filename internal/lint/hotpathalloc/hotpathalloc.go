// Package hotpathalloc defines an analyzer that keeps //hh:hotpath
// functions allocation-free — the static twin of the AllocsPerRun tests
// that pin the batch engine's per-round path at zero allocations.
//
// Inside a //hh:hotpath function the analyzer flags:
//
//   - make, new, and map/func literals (direct allocations)
//   - append (only provably safe within reserved capacity; annotate the
//     statement //hh:allocok <why> when the capacity argument is proven)
//   - calls into package fmt (allocate and pull in reflection)
//   - implicit interface conversions in calls, assignments, variable
//     declarations, and returns (box the concrete value)
//
// Abort paths are cold by construction: a return statement that builds an
// error via fmt.Errorf / errors.New is exempt, as is any statement
// annotated //hh:allocok <why>.
//
// The analyzer also enforces the annotation topology: the known hot roots
// (stepLockstep, stepGeneral, Match, MatchCarry) must be annotated, and
// every same-package function a hot function calls must itself be either
// //hh:hotpath or //hh:coldpath <why>, so the annotation frontier is
// always explicit.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"github.com/gmrl/househunt/internal/lint/analysis"
	"github.com/gmrl/househunt/internal/lint/hhannot"
)

// Roots are function/method names that anchor the hot path; declaring one
// without //hh:hotpath is an error so the annotation set cannot silently
// rot as code moves.
var Roots = map[string]bool{
	"stepLockstep": true,
	"stepGeneral":  true,
	"Match":        true,
	"MatchCarry":   true,
}

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocations, fmt, closures, and interface boxing in //hh:hotpath functions",
	Run:  run,
}

// funcInfo records one declared function's annotation state for the
// callee-propagation rule.
type funcInfo struct {
	decl    *ast.FuncDecl
	hot     bool
	cold    bool
	hasBody bool
}

type funcInfoLookup = map[types.Object]*funcInfo

func run(pass *analysis.Pass) error {
	annots := hhannot.NewMap(pass.Fset, pass.Files)

	// Map every declared function object to its annotation state so the
	// callee-propagation rule can resolve same-package static calls.
	byObj := make(funcInfoLookup)
	var hotDecls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			fi := &funcInfo{
				decl:    fd,
				hot:     hhannot.DocHas(fd.Doc, "hotpath"),
				cold:    hhannot.DocHas(fd.Doc, "coldpath"),
				hasBody: fd.Body != nil,
			}
			if obj != nil {
				byObj[obj] = fi
			}
			if Roots[fd.Name.Name] && !fi.hot {
				pass.Reportf(fd.Name.Pos(), "hot root %s must be annotated //hh:hotpath", fd.Name.Name)
			}
			if fi.hot && fi.hasBody {
				hotDecls = append(hotDecls, fd)
			}
		}
	}

	for _, fd := range hotDecls {
		checkBody(pass, annots, byObj, fd)
	}
	return nil
}

func checkBody(pass *analysis.Pass, annots *hhannot.Map, byObj funcInfoLookup, fd *ast.FuncDecl) {
	results := fd.Type.Results
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, *ast.CaseClause:
			if annots.Has(n, "allocok") {
				return false
			}
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if isColdErrorReturn(pass, n) {
				return false
			}
			checkReturnBoxing(pass, results, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //hh:hotpath function: captured variables may escape to the heap")
			return false
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "map literal allocates in //hh:hotpath function")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, annots, byObj, n)
		case *ast.AssignStmt:
			checkAssignBoxing(pass, n)
		case *ast.ValueSpec:
			checkSpecBoxing(pass, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, annots *hhannot.Map, byObj funcInfoLookup, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in //hh:hotpath function (preallocate in lane setup)", b.Name())
			case "append":
				pass.Reportf(call.Pos(), "append in //hh:hotpath function may grow beyond capacity (annotate //hh:allocok <why> if within reserved capacity)")
			}
			return
		}
	}

	callee := calleeObject(pass, call)
	if callee != nil {
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s in //hh:hotpath function allocates and reflects; move to a cold error return or drop it", callee.Name())
			return
		}
		if fi, ok := byObj[callee]; ok && !fi.hot && !fi.cold {
			pass.Reportf(call.Pos(), "//hh:hotpath function calls %s, which is neither //hh:hotpath nor //hh:coldpath", callee.Name())
		}
	}

	// Implicit interface boxing of arguments. Conversions expressed as
	// T(x) are handled by TypesInfo.Types[call.Fun].IsType() below.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			if src := pass.TypesInfo.TypeOf(call.Args[0]); src != nil && !types.IsInterface(src) && !isNil(src) {
				pass.Reportf(call.Pos(), "conversion to interface %s boxes the value in //hh:hotpath function", tv.Type.String())
			}
		}
		return
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at != nil && !types.IsInterface(at) && !isNil(at) {
			pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in //hh:hotpath function", at.String(), pt.String())
		}
	}
}

func checkAssignBoxing(pass *analysis.Pass, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		lt := pass.TypesInfo.TypeOf(n.Lhs[i])
		rt := pass.TypesInfo.TypeOf(n.Rhs[i])
		if lt != nil && rt != nil && types.IsInterface(lt) && !types.IsInterface(rt) && !isNil(rt) {
			pass.Reportf(n.Rhs[i].Pos(), "assignment boxes %s into interface %s in //hh:hotpath function", rt.String(), lt.String())
		}
	}
}

func checkSpecBoxing(pass *analysis.Pass, n *ast.ValueSpec) {
	if n.Type == nil {
		return
	}
	lt := pass.TypesInfo.TypeOf(n.Type)
	if lt == nil || !types.IsInterface(lt) {
		return
	}
	for _, v := range n.Values {
		if rt := pass.TypesInfo.TypeOf(v); rt != nil && !types.IsInterface(rt) && !isNil(rt) {
			pass.Reportf(v.Pos(), "declaration boxes %s into interface %s in //hh:hotpath function", rt.String(), lt.String())
		}
	}
}

func checkReturnBoxing(pass *analysis.Pass, results *ast.FieldList, n *ast.ReturnStmt) {
	if results == nil || len(n.Results) == 0 {
		return
	}
	var resTypes []types.Type
	for _, f := range results.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		k := len(f.Names)
		if k == 0 {
			k = 1
		}
		for j := 0; j < k; j++ {
			resTypes = append(resTypes, t)
		}
	}
	if len(resTypes) != len(n.Results) {
		return
	}
	for i, r := range n.Results {
		rt := pass.TypesInfo.TypeOf(r)
		if resTypes[i] != nil && rt != nil && types.IsInterface(resTypes[i]) && !types.IsInterface(rt) && !isNil(rt) {
			pass.Reportf(r.Pos(), "return boxes %s into interface %s in //hh:hotpath function", rt.String(), resTypes[i].String())
		}
	}
}

// isColdErrorReturn reports whether ret constructs an error via
// fmt.Errorf or errors.New — the abort-path idiom that is cold by
// construction and therefore exempt from allocation checks.
func isColdErrorReturn(pass *analysis.Pass, ret *ast.ReturnStmt) bool {
	cold := false
	ast.Inspect(ret, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeObject(pass, call); obj != nil && obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf",
				obj.Pkg().Path() == "errors" && obj.Name() == "New":
				cold = true
				return false
			}
		}
		return true
	})
	return cold
}

// calleeObject resolves the static callee of a call, or nil for func
// values, interface methods without a static target, and builtins.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				// Skip methods reached through an interface: no static body.
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return f
			}
			return nil
		}
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
