package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over the closed interval
// [Lo, Hi]: the upper bound itself lands in the last bin, not in Overflow.
// Values strictly outside the interval are clamped into the first/last bin
// and tracked in Underflow/Overflow so no observation is silently dropped.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Underflow int
	Overflow  int
	total     int
}

// NewHistogram creates a histogram with the given number of bins spanning the
// closed interval [lo, hi]. It returns an error for degenerate bounds or
// non-positive bins.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs hi > lo, got [%v, %v]", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Lo {
		h.Underflow++
		h.Counts[0]++
		return
	}
	if x > h.Hi {
		h.Overflow++
		h.Counts[len(h.Counts)-1]++
		return
	}
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx >= len(h.Counts) { // x == Hi (closed interval) and float edges near it
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// Render draws the histogram as ASCII art, one row per bin, scaled to the
// given maximum bar width. It is used by the CLI tools and examples.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		}
		fmt.Fprintf(&b, "%10.3g | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Sparkline renders a sequence of values as a compact unicode sparkline,
// useful for inline population-trajectory displays.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	b.Grow(len(values) * 3)
	span := hi - lo
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(ticks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ticks) {
			idx = len(ticks) - 1
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}
