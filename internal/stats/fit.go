package stats

import (
	"fmt"
	"math"
)

// LinearFit is the result of an ordinary least squares fit y ≈ Slope*x +
// Intercept, with the coefficient of determination R2 as goodness of fit.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// String renders the fit in a compact, human-readable form.
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.4g*x %+.4g (R²=%.4f, n=%d)", f.Slope, f.Intercept, f.R2, f.N)
}

// FitLinear computes the OLS fit of ys against xs. The slices must have equal,
// non-zero length; mismatched input is a programming error and is reported as
// an error rather than a panic so harness code can surface it.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: FitLinear length mismatch: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLinear needs >= 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLinear has zero x-variance")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	var r2 float64
	if syy > 0 {
		ssRes := 0.0
		for i := range xs {
			resid := ys[i] - (slope*xs[i] + intercept)
			ssRes += resid * resid
		}
		r2 = 1 - ssRes/syy
	} else {
		r2 = 1 // constant y perfectly explained by zero slope
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}, nil
}

// FitLogN fits ys against log2(xs): the paper's O(log n) shape. xs must be
// strictly positive.
func FitLogN(xs, ys []float64) (LinearFit, error) {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LinearFit{}, fmt.Errorf("stats: FitLogN requires positive x, got %v at %d", x, i)
		}
		lx[i] = math.Log2(x)
	}
	return FitLinear(lx, ys)
}

// FitKLogN fits rounds against k*log2(n): the paper's O(k log n) shape for
// Algorithm 3. All inputs must be positive and of equal length.
func FitKLogN(ks, ns, ys []float64) (LinearFit, error) {
	if len(ks) != len(ns) || len(ns) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: FitKLogN length mismatch: %d, %d, %d", len(ks), len(ns), len(ys))
	}
	x := make([]float64, len(ks))
	for i := range ks {
		if ks[i] <= 0 || ns[i] <= 0 {
			return LinearFit{}, fmt.Errorf("stats: FitKLogN requires positive inputs at %d", i)
		}
		x[i] = ks[i] * math.Log2(ns[i])
	}
	return FitLinear(x, ys)
}

// PearsonR returns the Pearson correlation coefficient between xs and ys, or
// an error on mismatched/degenerate input.
func PearsonR(xs, ys []float64) (float64, error) {
	fit, err := FitLinear(xs, ys)
	if err != nil {
		return 0, err
	}
	if fit.R2 < 0 {
		return 0, nil
	}
	r := math.Sqrt(fit.R2)
	if fit.Slope < 0 {
		r = -r
	}
	return r, nil
}
