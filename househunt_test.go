package househunt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickstart(t *testing.T) {
	t.Parallel()
	res, err := Run(
		WithColonySize(128),
		WithBinaryNests(4, 2),
		WithAlgorithm(AlgorithmSimple),
		WithSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("quickstart did not converge: %+v", res)
	}
	if res.Winner < 1 || res.Winner > 2 {
		t.Fatalf("winner %d is not one of the good nests", res.Winner)
	}
	if res.WinnerQuality != 1 {
		t.Fatalf("winner quality %v", res.WinnerQuality)
	}
	if !strings.Contains(res.Summary(), "solved") {
		t.Fatalf("summary: %s", res.Summary())
	}
}

func TestRunRequiredOptions(t *testing.T) {
	t.Parallel()
	if _, err := Run(WithBinaryNests(2, 1)); err == nil {
		t.Fatal("missing colony size accepted")
	}
	if _, err := Run(WithColonySize(10)); err == nil {
		t.Fatal("missing nests accepted")
	}
	if _, err := Run(WithColonySize(10), WithNests(0, 0)); err == nil {
		t.Fatal("all-bad environment accepted")
	}
	if _, err := Run(WithColonySize(10), WithBinaryNests(2, 1), WithAlgorithm("bogus")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestOptionValidation(t *testing.T) {
	t.Parallel()
	bad := []Option{
		WithColonySize(0),
		WithNests(),
		WithBinaryNests(0, 0),
		WithBinaryNests(2, 3),
		WithMaxRounds(-1),
		WithStabilityWindow(-1),
		WithCountNoise(-0.5),
		WithAssessmentFlips(1.5),
		WithEncounterRateSensing(0, 1),
		WithCrashFaults(-0.1, 10),
		WithByzantineAnts(2),
		WithJitter(1.0, 0),
		WithJitter(0.1, -1),
		WithAdaptiveSchedule(-1, 0),
		WithQuorum(0.5, 3, 0.2),
		WithQuorum(2, -1, 0.2),
		WithQuorum(2, 3, 1.5),
		WithColonySizeError(-0.1),
		WithColonySizeError(1),
	}
	for i, opt := range bad {
		cfg := Config{}
		if err := opt(&cfg); err == nil {
			t.Errorf("bad option %d accepted", i)
		}
	}
}

func TestAllAlgorithmsRun(t *testing.T) {
	t.Parallel()
	algos := []Algorithm{
		AlgorithmOptimal, AlgorithmSimple, AlgorithmSimplePFSM,
		AlgorithmAdaptive, AlgorithmQualityAware, AlgorithmQuorum,
		AlgorithmApproxN,
	}
	for _, a := range algos {
		a := a
		t.Run(string(a), func(t *testing.T) {
			t.Parallel()
			res, err := Run(
				WithColonySize(96),
				WithBinaryNests(3, 2),
				WithAlgorithm(a),
				WithSeed(7),
			)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("%s did not converge", a)
			}
		})
	}
}

func TestSpreaderNeedsSingleGood(t *testing.T) {
	t.Parallel()
	if _, err := Run(
		WithColonySize(64),
		WithBinaryNests(3, 2),
		WithAlgorithm(AlgorithmSpreader),
	); err == nil {
		t.Fatal("spreader with two good nests accepted")
	}
	res, err := Run(
		WithColonySize(64),
		WithBinaryNests(3, 1),
		WithAlgorithm(AlgorithmSpreader),
		WithSeed(3),
	)
	if err != nil || !res.Solved {
		t.Fatalf("spreader run: %v, %+v", err, res)
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	run := func() *Result {
		res, err := Run(
			WithColonySize(200),
			WithBinaryNests(6, 3),
			WithAlgorithm(AlgorithmOptimal),
			WithSeed(99),
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.Winner != b.Winner {
		t.Fatalf("equal seeds diverged: %+v vs %+v", a, b)
	}
}

func TestTracingExports(t *testing.T) {
	t.Parallel()
	res, err := Run(
		WithColonySize(80),
		WithBinaryNests(3, 1),
		WithAlgorithm(AlgorithmSimple),
		WithSeed(5),
		WithTracing(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Traced() {
		t.Fatal("traced run reports untraced")
	}
	hist := res.History()
	if len(hist) != res.Rounds {
		t.Fatalf("history %d rounds, result %d", len(hist), res.Rounds)
	}
	total := 0
	for _, p := range hist[0].Populations {
		total += p
	}
	if total != 80 {
		t.Fatalf("history populations sum %d, want 80", total)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "round,pop0") {
		t.Fatalf("csv header: %q", csv.String()[:40])
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "populations") {
		t.Fatal("json export missing populations")
	}
	if plot := res.RenderPlot(40, 10); !strings.Contains(plot, "legend") {
		t.Fatalf("plot: %q", plot)
	}
}

func TestUntracedExportsFail(t *testing.T) {
	t.Parallel()
	res, err := Run(
		WithColonySize(32),
		WithBinaryNests(2, 1),
		WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traced() {
		t.Fatal("untraced run reports traced")
	}
	if err := res.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("CSV export on untraced run accepted")
	}
	if err := res.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("JSON export on untraced run accepted")
	}
	if res.RenderPlot(0, 0) != "" {
		t.Fatal("plot on untraced run non-empty")
	}
	if res.History() != nil {
		t.Fatal("history on untraced run non-nil")
	}
}

func TestNoiseForcesSimple(t *testing.T) {
	t.Parallel()
	if _, err := Run(
		WithColonySize(50),
		WithBinaryNests(2, 1),
		WithAlgorithm(AlgorithmOptimal),
		WithCountNoise(0.1),
	); err == nil {
		t.Fatal("noise with optimal accepted")
	}
	res, err := Run(
		WithColonySize(150),
		WithBinaryNests(3, 2),
		WithCountNoise(0.2),
		WithSeed(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("noisy run did not converge")
	}
	if !strings.Contains(res.Algorithm, "noisy") {
		t.Fatalf("algorithm = %q, want noisy variant", res.Algorithm)
	}
}

func TestEncounterSensingRuns(t *testing.T) {
	t.Parallel()
	res, err := Run(
		WithColonySize(150),
		WithBinaryNests(2, 1),
		WithEncounterRateSensing(64, 8),
		WithSeed(9),
		WithMaxRounds(4000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("encounter-rate sensing run did not converge")
	}
}

func TestFaultsAndJitterViaFacade(t *testing.T) {
	t.Parallel()
	res, err := Run(
		WithColonySize(200),
		WithBinaryNests(4, 2),
		WithCrashFaults(0.1, 30),
		WithByzantineAnts(0.05),
		WithJitter(0.1, 3),
		WithSeed(13),
		WithMaxRounds(6000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultyAnts == 0 {
		t.Fatal("no faulty ants recorded despite fault options")
	}
}

func TestConcurrentFacade(t *testing.T) {
	t.Parallel()
	seq, err := Run(
		WithColonySize(64), WithBinaryNests(2, 2), WithSeed(21),
	)
	if err != nil {
		t.Fatal(err)
	}
	con, err := Run(
		WithColonySize(64), WithBinaryNests(2, 2), WithSeed(21), WithConcurrentAnts(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds != con.Rounds || seq.Winner != con.Winner {
		t.Fatalf("concurrent facade diverged: %+v vs %+v", seq, con)
	}
}

func TestQualityLadderViaFacade(t *testing.T) {
	t.Parallel()
	res, err := Run(
		WithColonySize(256),
		WithNests(0.2, 0.5, 0.95),
		WithAlgorithm(AlgorithmQualityAware),
		WithSeed(17),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("quality ladder did not converge")
	}
	if res.WinnerQuality < 0.5 {
		t.Fatalf("winner quality %v suspiciously low", res.WinnerQuality)
	}
}

func TestQuorumViaFacade(t *testing.T) {
	t.Parallel()
	res, err := Run(
		WithColonySize(240),
		WithBinaryNests(4, 2),
		WithAlgorithm(AlgorithmQuorum),
		WithQuorum(2.0, 3, 0.25),
		WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("quorum facade run did not converge")
	}
	if res.Winner != 1 && res.Winner != 2 {
		t.Fatalf("quorum winner %d is not a good nest", res.Winner)
	}
}

func TestApproxNViaFacade(t *testing.T) {
	t.Parallel()
	res, err := Run(
		WithColonySize(200),
		WithBinaryNests(3, 2),
		WithAlgorithm(AlgorithmApproxN),
		WithColonySizeError(0.4),
		WithSeed(6),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("approxn facade run did not converge")
	}
}
