// Package algo implements the paper's house-hunting algorithms and the §6
// extensions:
//
//   - Simple: Algorithm 3 — recruit with probability proportional to nest
//     population; O(k log n) rounds w.h.p. (Theorem 5.11).
//   - Optimal: Algorithm 2 — population-trend competition with drop-outs;
//     O(log n) rounds w.h.p. (Theorem 4.3).
//   - Spreader: the rumor-spreading process of the §3 lower bound, used to
//     exhibit the Ω(log n) bound empirically.
//   - Adaptive, QualityAware, Noisy: the §6 extensions (rate boosting,
//     non-binary qualities, approximate counting/assessment).
//
// Every implementation follows the paper's pseudocode line by line; deviations
// required to make the pseudocode executable are called out in the comments
// and measured in EXPERIMENTS.md.
package algo

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// simplePhase sequences Algorithm 3's internal cycle. The phase is tracked
// per-ant rather than derived from the global round number so that the
// asynchrony extension (held rounds) stretches an ant's cycle without
// corrupting it; under a fully synchronous execution the two formulations
// are identical because every ant advances its phase once per round.
type simplePhase int

const (
	simpleSearch  simplePhase = iota + 1 // round 1: search()
	simpleRecruit                        // even rounds: recruit(b, nest)
	simpleAssess                         // odd rounds: count := go(nest)
)

// SimpleAnt is one ant of the paper's Algorithm 3 (§5):
//
//	state: {active, passive}, initially active
//	⟨nest, count, quality⟩ := search()
//	if quality = 0 then state := passive
//	case active:  b := 1 w.p. count/n, else 0
//	              nest := recruit(b, nest); count := go(nest)
//	case passive: nest_t := recruit(0, nest)
//	              if nest_t ≠ nest then state := active; nest := nest_t
//	              count := go(nest)
type SimpleAnt struct {
	n      int
	src    *rng.Source
	phase  simplePhase
	active bool

	nest    sim.NestID
	count   int
	quality float64
}

var _ sim.Agent = (*SimpleAnt)(nil)

// NewSimpleAnt builds one Algorithm 3 ant for a colony of n ants.
func NewSimpleAnt(n int, src *rng.Source) *SimpleAnt {
	return &SimpleAnt{n: n, src: src, phase: simpleSearch, active: true}
}

// Act implements sim.Agent.
func (a *SimpleAnt) Act(int) sim.Action {
	switch a.phase {
	case simpleSearch:
		return sim.Search()
	case simpleRecruit:
		b := false
		if a.active {
			b = a.src.Bernoulli(float64(a.count) / float64(a.n))
		}
		return sim.Recruit(b, a.nest)
	default: // simpleAssess
		return sim.Goto(a.nest)
	}
}

// Observe implements sim.Agent.
func (a *SimpleAnt) Observe(_ int, out sim.Outcome) {
	switch a.phase {
	case simpleSearch:
		a.nest = out.Nest
		a.count = out.Count
		a.quality = out.Quality
		if a.quality == 0 {
			a.active = false
		}
		a.phase = simpleRecruit
	case simpleRecruit:
		// recruit returns the recruiter's nest when captured, else the input:
		// for active ants this is the unconditional "nest := recruit(b, nest)";
		// for passive ants a change of nest re-activates them.
		if out.Nest != a.nest {
			a.nest = out.Nest
			a.active = true
		}
		a.phase = simpleAssess
	case simpleAssess:
		a.count = out.Count
		a.phase = simpleRecruit
	}
}

// Committed implements the core.Committer contract.
func (a *SimpleAnt) Committed() (sim.NestID, bool) {
	return a.nest, a.nest != sim.Home
}

// Active reports whether the ant is in Algorithm 3's active state
// (instrumentation for tests and experiments).
func (a *SimpleAnt) Active() bool { return a.active }

// Count returns the ant's remembered population of its committed nest.
func (a *SimpleAnt) Count() int { return a.count }

// Simple is the core.Algorithm builder for Algorithm 3.
type Simple struct{}

// Name implements core.Algorithm.
func (Simple) Name() string { return "simple" }

// Build implements core.Algorithm.
func (Simple) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algo: simple needs a positive colony, got %d", n)
	}
	if env.K() == 0 {
		return nil, fmt.Errorf("algo: simple needs a non-empty environment")
	}
	agents := make([]sim.Agent, n)
	for i := range agents {
		agents[i] = NewSimpleAnt(n, src.Split(uint64(i)))
	}
	return agents, nil
}
