package househunt

import (
	"fmt"
	"testing"
)

// TestGoldenExecutions pins exact convergence rounds and winners for fixed
// seeds across every algorithm. These are regression canaries: the engine,
// the matcher, the RNG streams and every algorithm are deterministic, so any
// diff here means an unintended semantic change somewhere in the stack (or an
// intended one that must be called out in the changelog and EXPERIMENTS.md
// regenerated).
//
// If a change legitimately alters executions (e.g. an extra RNG draw), update
// the table below in the same commit and say why.
func TestGoldenExecutions(t *testing.T) {
	t.Parallel()
	type golden struct {
		algo   Algorithm
		n      int
		k      int
		good   int
		seed   uint64
		rounds int
		winner int
	}
	cases := []golden{
		{AlgorithmSimple, 128, 4, 2, 42, 52, 1},
		{AlgorithmSimple, 256, 8, 4, 7, 40, 1},
		{AlgorithmOptimal, 128, 4, 2, 42, 49, 2},
		{AlgorithmOptimal, 256, 8, 4, 7, 69, 2},
		{AlgorithmAdaptive, 256, 8, 8, 7, 52, 6},
		{AlgorithmQualityAware, 128, 4, 4, 42, 24, 3},
		{AlgorithmQuorum, 256, 4, 2, 7, 23, 2},
		{AlgorithmSimplePFSM, 128, 4, 2, 42, 52, 1}, // must equal AlgorithmSimple
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/n%d/k%d/seed%d", tc.algo, tc.n, tc.k, tc.seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(
				WithColonySize(tc.n),
				WithBinaryNests(tc.k, tc.good),
				WithAlgorithm(tc.algo),
				WithSeed(tc.seed),
			)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("golden run unsolved: %+v", res)
			}
			if res.Rounds != tc.rounds || res.Winner != tc.winner {
				t.Fatalf("golden drift: got rounds=%d winner=%d, pinned rounds=%d winner=%d",
					res.Rounds, res.Winner, tc.rounds, tc.winner)
			}
		})
	}
}
