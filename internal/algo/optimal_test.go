package algo

import (
	"math"
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
)

func TestOptimalConvergesSmall(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	res := runAlgo(t, Optimal{}, 128, env, 1, 0)
	if !res.Solved {
		t.Fatalf("optimal did not converge: %+v", res)
	}
	if !env.Good(res.Winner) {
		t.Fatalf("winner %d is a bad nest", res.Winner)
	}
	// Algorithm 2 terminates with every ant decided (final state).
	if res.FinalCensus.Decided != res.FinalCensus.Total {
		t.Fatalf("not all ants final: %+v", res.FinalCensus)
	}
}

func TestOptimalSingleNestDeterministicSchedule(t *testing.T) {
	t.Parallel()
	// With k=1 every ant finds the nest in round 1, the single 4-round phase
	// (rounds 2-5) runs Case 1 for everyone, and count_h = count = n at R4
	// finalizes the whole colony simultaneously: convergence at round 5,
	// independent of n and seed.
	env := sim.MustEnvironment([]float64{1})
	for _, n := range []int{4, 32, 100} {
		for seed := uint64(1); seed <= 3; seed++ {
			res := runAlgo(t, Optimal{}, n, env, seed, 0)
			if !res.Solved || res.Winner != 1 {
				t.Fatalf("n=%d seed=%d: %+v", n, seed, res)
			}
			if res.Rounds != 5 {
				t.Fatalf("n=%d seed=%d: converged at round %d, want exactly 5", n, seed, res.Rounds)
			}
		}
	}
}

func TestOptimalAlwaysPicksGoodNest(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 1, 0, 0})
	for seed := uint64(1); seed <= 20; seed++ {
		res := runAlgo(t, Optimal{}, 120, env, seed, 0)
		if !res.Solved {
			t.Fatalf("seed %d: did not converge", seed)
		}
		if res.Winner != 2 {
			t.Fatalf("seed %d: winner %d, want the unique good nest 2", seed, res.Winner)
		}
	}
}

func TestOptimalFasterThanSimpleForLargeK(t *testing.T) {
	t.Parallel()
	// Theorem 4.3 vs 5.11: at k=16 the O(log n) algorithm must beat the
	// O(k log n) one clearly on average.
	const n, reps = 512, 5
	env, err := sim.Uniform(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	var optTotal, simTotal int
	for seed := uint64(1); seed <= reps; seed++ {
		o := runAlgo(t, Optimal{}, n, env, seed, 0)
		s := runAlgo(t, Simple{}, n, env, seed, 0)
		if !o.Solved || !s.Solved {
			t.Fatalf("seed %d: opt solved=%v simple solved=%v", seed, o.Solved, s.Solved)
		}
		optTotal += o.Rounds
		simTotal += s.Rounds
	}
	if optTotal >= simTotal {
		t.Fatalf("optimal (%d total rounds) not faster than simple (%d) at k=16", optTotal, simTotal)
	}
}

func TestOptimalLogarithmicScaling(t *testing.T) {
	t.Parallel()
	// Rounds should grow roughly additively when n doubles repeatedly — the
	// O(log n) signature. We assert the ratio rounds(n=4096)/rounds(n=64) is
	// far below the linear ratio 64, and below even sqrt growth.
	env, err := sim.Uniform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(n int) float64 {
		const reps = 5
		total := 0
		for seed := uint64(1); seed <= reps; seed++ {
			res := runAlgo(t, Optimal{}, n, env, seed, 0)
			if !res.Solved {
				t.Fatalf("n=%d seed=%d unsolved", n, seed)
			}
			total += res.Rounds
		}
		return float64(total) / reps
	}
	small, large := avg(64), avg(4096)
	if ratio := large / small; ratio > 4 {
		t.Fatalf("scaling ratio %v for 64x colony growth is not logarithmic (small=%v large=%v)",
			ratio, small, large)
	}
}

func TestOptimalAntStateMachine(t *testing.T) {
	t.Parallel()
	// Unit-level walk of the happy path: search → active case 1 → final.
	a := NewOptimalAnt(testSrc(1), false)
	if got := a.Act(1); got.Kind != sim.ActionSearch {
		t.Fatalf("round 1 act = %+v", got)
	}
	a.Observe(1, sim.Outcome{Nest: 1, Count: 4, Quality: 1})
	if a.State() != "active" {
		t.Fatalf("state after good search = %s", a.State())
	}

	// Phase rounds 2-5 (R1-R4), Case 1 with stable population.
	if got := a.Act(2); got.Kind != sim.ActionRecruit || !got.Active || got.Nest != 1 {
		t.Fatalf("R1 act = %+v, want recruit(1,1)", got)
	}
	a.Observe(2, sim.Outcome{Nest: 1, Count: 9}) // not captured
	if got := a.Act(3); got.Kind != sim.ActionGo || got.Nest != 1 {
		t.Fatalf("R2 act = %+v, want go(1)", got)
	}
	a.Observe(3, sim.Outcome{Nest: 1, Count: 6}) // count_t = 6 >= 4: Case 1
	if got := a.Act(4); got.Kind != sim.ActionGo || got.Nest != 1 {
		t.Fatalf("R3 act = %+v, want go(1)", got)
	}
	a.Observe(4, sim.Outcome{Nest: 1, Count: 6})
	if got := a.Act(5); got.Kind != sim.ActionRecruit || got.Active {
		t.Fatalf("R4 act = %+v, want recruit(0,1)", got)
	}
	a.Observe(5, sim.Outcome{Nest: 1, Count: 6}) // count_h = 6 == count: finalize
	if a.State() != "final" {
		t.Fatalf("state after count_h == count: %s", a.State())
	}
	if !a.Decided() {
		t.Fatal("final ant not decided")
	}
	if got := a.Act(6); got.Kind != sim.ActionRecruit || !got.Active {
		t.Fatalf("final act = %+v, want recruit(1, ·)", got)
	}
}

func TestOptimalAntDropout(t *testing.T) {
	t.Parallel()
	// Case 2: population decreased → passive, with the paper's padding calls.
	a := NewOptimalAnt(testSrc(2), false)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 2, Count: 10, Quality: 1})
	a.Act(2)
	a.Observe(2, sim.Outcome{Nest: 2}) // not captured
	a.Act(3)
	a.Observe(3, sim.Outcome{Nest: 2, Count: 7}) // decrease: Case 2
	if got := a.Act(4); got.Kind != sim.ActionRecruit || got.Active {
		t.Fatalf("case-2 R3 act = %+v, want recruit(0, ·) padding", got)
	}
	a.Observe(4, sim.Outcome{Nest: 2, Count: 3})
	if got := a.Act(5); got.Kind != sim.ActionGo {
		t.Fatalf("case-2 R4 act = %+v, want go padding", got)
	}
	if a.State() != "active" {
		t.Fatalf("state must switch only at the phase boundary, got %s", a.State())
	}
	a.Observe(5, sim.Outcome{Nest: 2, Count: 3})
	if a.State() != "passive" {
		t.Fatalf("state after dropout = %s, want passive", a.State())
	}
}

func TestOptimalAntRecruitedAway(t *testing.T) {
	t.Parallel()
	// Case 3: captured during R1; the repaired variant re-baselines count.
	a := NewOptimalAnt(testSrc(3), false)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 1, Count: 50, Quality: 1})
	a.Act(2)
	a.Observe(2, sim.Outcome{Nest: 4, Count: 0, Recruited: true}) // captured to nest 4
	if nest, _ := a.Committed(); nest != 4 {
		// Commitment switches at R2 per lines 37-38.
		if got := a.Act(3); got.Nest != 4 {
			t.Fatalf("R2 act = %+v, want go(4)", got)
		}
	}
	a.Act(3)
	a.Observe(3, sim.Outcome{Nest: 4, Count: 30}) // count_t at new nest
	a.Act(4)
	a.Observe(4, sim.Outcome{Nest: 4, Count: 30}) // count_n == count_t: competing
	a.Act(5)
	a.Observe(5, sim.Outcome{Nest: 4, Count: 30})
	if a.State() != "active" {
		t.Fatalf("state = %s, want active (nest still competing)", a.State())
	}
	// Repaired semantics: count is re-baselined to 30, so a subsequent phase
	// with count_t = 32 stays Case 1.
	a.Act(6)
	a.Observe(6, sim.Outcome{Nest: 4})
	a.Act(7)
	a.Observe(7, sim.Outcome{Nest: 4, Count: 32})
	a.Act(8)
	a.Observe(8, sim.Outcome{Nest: 4, Count: 32})
	a.Act(9)
	a.Observe(9, sim.Outcome{Nest: 4, Count: 40})
	if a.State() != "active" {
		t.Fatalf("repaired ant dropped out despite growth: %s", a.State())
	}
}

func TestOptimalLiteralAntKeepsStaleCount(t *testing.T) {
	t.Parallel()
	// Same trajectory as above under the literal pseudocode: the stale count
	// of 50 makes count_t = 32 < 50 look like a decrease → spurious dropout.
	a := NewOptimalAnt(testSrc(4), true)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 1, Count: 50, Quality: 1})
	a.Act(2)
	a.Observe(2, sim.Outcome{Nest: 4, Count: 0, Recruited: true})
	a.Act(3)
	a.Observe(3, sim.Outcome{Nest: 4, Count: 30})
	a.Act(4)
	a.Observe(4, sim.Outcome{Nest: 4, Count: 30})
	a.Act(5)
	a.Observe(5, sim.Outcome{Nest: 4, Count: 30})
	a.Act(6)
	a.Observe(6, sim.Outcome{Nest: 4})
	a.Act(7)
	a.Observe(7, sim.Outcome{Nest: 4, Count: 32}) // 32 < stale 50: Case 2
	a.Act(8)
	a.Observe(8, sim.Outcome{Nest: 4, Count: 32})
	a.Act(9)
	a.Observe(9, sim.Outcome{Nest: 4, Count: 32})
	if a.State() != "passive" {
		t.Fatalf("literal ant state = %s, want the spurious passive dropout", a.State())
	}
}

func TestOptimalPassiveCapturedBecomesFinal(t *testing.T) {
	t.Parallel()
	a := NewOptimalAnt(testSrc(5), false)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 3, Count: 2, Quality: 0}) // bad nest → passive
	if a.State() != "passive" {
		t.Fatalf("state = %s", a.State())
	}
	if got := a.Act(2); got.Kind != sim.ActionGo || got.Nest != 3 {
		t.Fatalf("passive R1 = %+v, want go(3)", got)
	}
	a.Observe(2, sim.Outcome{Nest: 3, Count: 1})
	if got := a.Act(3); got.Kind != sim.ActionRecruit || got.Active {
		t.Fatalf("passive R2 = %+v, want recruit(0,3)", got)
	}
	a.Observe(3, sim.Outcome{Nest: 5, Count: 4, Recruited: true}) // captured by a final ant
	// Lines 18-19: the block finishes with go(new nest) twice before final.
	if got := a.Act(4); got.Kind != sim.ActionGo || got.Nest != 5 {
		t.Fatalf("passive R3 = %+v, want go(5)", got)
	}
	a.Observe(4, sim.Outcome{Nest: 5, Count: 4})
	if a.State() != "passive" {
		t.Fatal("became final before the block boundary")
	}
	if got := a.Act(5); got.Kind != sim.ActionGo || got.Nest != 5 {
		t.Fatalf("passive R4 = %+v, want go(5)", got)
	}
	a.Observe(5, sim.Outcome{Nest: 5, Count: 4})
	if a.State() != "final" || !a.Decided() {
		t.Fatalf("state = %s after boundary, want final", a.State())
	}
}

func TestOptimalLiteralStillRunsWithoutError(t *testing.T) {
	t.Parallel()
	// The literal variant may deadlock (see the OptimalAnt doc comment and
	// ablation E17) but must never corrupt the protocol: every run completes
	// without engine errors, solved or not.
	env := sim.MustEnvironment([]float64{1, 1})
	solved := 0
	for seed := uint64(1); seed <= 10; seed++ {
		res, err := core.Run(Optimal{Literal: true}, core.RunConfig{
			N: 128, Env: env, Seed: seed, MaxRounds: 2000,
		})
		if err != nil {
			t.Fatalf("seed %d: protocol error: %v", seed, err)
		}
		if res.Solved {
			solved++
		}
	}
	t.Logf("literal Algorithm 2 solved %d/10 runs (deadlock rate is quantified in E17)", solved)
}

func TestOptimalBuilderValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := (Optimal{}).Build(0, env, testSrc(1)); err == nil {
		t.Fatal("zero colony accepted")
	}
	if _, err := (Optimal{}).Build(3, sim.Environment{}, testSrc(1)); err == nil {
		t.Fatal("empty environment accepted")
	}
	if (Optimal{}).Name() == (Optimal{Literal: true}).Name() {
		t.Fatal("literal and repaired variants share a name")
	}
}

func TestOptimalScalingBeatsLinear(t *testing.T) {
	t.Parallel()
	// Convergence rounds divided by log2(n) should stay bounded as n grows —
	// a cheap empirical stand-in for Theorem 4.3 used as a regression guard.
	env, err := sim.Uniform(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{64, 512, 4096} {
		res := runAlgo(t, Optimal{}, n, env, 11, 0)
		if !res.Solved {
			t.Fatalf("n=%d unsolved", n)
		}
		normalized := float64(res.Rounds) / math.Log2(float64(n))
		if normalized > 30 {
			t.Fatalf("n=%d: rounds/log2(n) = %.1f, far above the O(log n) regime", n, normalized)
		}
	}
}
