package stats

import (
	"fmt"
	"math"
)

// QuantileSketch is a mergeable quantile sketch with a bounded relative
// error, in the DDSketch family: positive observations land in
// logarithmically sized buckets indexed by ⌈log_γ x⌉ with γ = (1+α)/(1-α),
// so any quantile query answers within relative error α of a sample value
// at that rank. Bucket counts are plain integers, which makes Merge an
// exact bucket-wise addition — associative and commutative, so sharded
// sweeps reduce in any order to the same sketch (the property the
// streaming-telemetry collector relies on).
//
// Observations at or below zero are folded into a dedicated zero bucket
// (convergence times are positive, but the sketch stays total). Min and
// max are tracked exactly. The zero value is unusable; construct with
// NewQuantileSketch.
type QuantileSketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64

	// counts[i] holds the population of bucket offset+i; the dense window
	// grows as observations spread. zero counts non-positive observations.
	counts []uint64
	offset int
	zero   uint64
	n      uint64

	min, max float64
}

// NewQuantileSketch returns an empty sketch with relative accuracy alpha
// (0 < alpha < 1). alpha = 0.01 keeps any quantile within 1% of a sample
// value while storing a few hundred buckets for round counts up to 10^6.
func NewQuantileSketch(alpha float64) (*QuantileSketch, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("stats: sketch accuracy alpha must be in (0,1), got %g", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{alpha: alpha, gamma: gamma, lnGamma: math.Log(gamma)}, nil
}

// MustQuantileSketch is NewQuantileSketch that panics on error, for
// package-level wiring of known-good accuracies.
func MustQuantileSketch(alpha float64) *QuantileSketch {
	s, err := NewQuantileSketch(alpha)
	if err != nil {
		panic(err)
	}
	return s
}

// Alpha returns the sketch's relative accuracy.
func (s *QuantileSketch) Alpha() float64 { return s.alpha }

// N returns the number of observations.
func (s *QuantileSketch) N() uint64 { return s.n }

// Min returns the smallest observation, or 0 for an empty sketch.
func (s *QuantileSketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 for an empty sketch.
func (s *QuantileSketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// index maps a positive observation to its bucket index ⌈log_γ x⌉.
func (s *QuantileSketch) index(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnGamma))
}

// Add incorporates one observation.
func (s *QuantileSketch) Add(x float64) { s.AddN(x, 1) }

// AddN incorporates count observations of the same value.
func (s *QuantileSketch) AddN(x float64, count uint64) {
	if count == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n += count
	if x <= 0 {
		s.zero += count
		return
	}
	s.bump(s.index(x), count)
}

// bump adds count to bucket idx, growing the dense window to cover it.
func (s *QuantileSketch) bump(idx int, count uint64) {
	if len(s.counts) == 0 {
		s.counts = append(s.counts, count)
		s.offset = idx
		return
	}
	if idx < s.offset {
		grown := make([]uint64, len(s.counts)+(s.offset-idx))
		copy(grown[s.offset-idx:], s.counts)
		s.counts = grown
		s.offset = idx
	} else if idx >= s.offset+len(s.counts) {
		grown := make([]uint64, idx-s.offset+1)
		copy(grown, s.counts)
		s.counts = grown
	}
	s.counts[idx-s.offset] += count
}

// Merge folds other into s bucket-wise. Sketches must share the same
// accuracy: bucket boundaries are a function of alpha, so mixing
// accuracies would misassign mass.
func (s *QuantileSketch) Merge(other *QuantileSketch) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.alpha != s.alpha {
		return fmt.Errorf("stats: merging sketches with different accuracies (%g vs %g)", s.alpha, other.alpha)
	}
	if s.n == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	s.n += other.n
	s.zero += other.zero
	for i, c := range other.counts {
		if c != 0 {
			s.bump(other.offset+i, c)
		}
	}
	return nil
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) within
// relative error Alpha of a sample value at that rank. Like
// stats.Quantile it panics on an empty sketch: querying a quantile of
// nothing is a programming error.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.n == 0 {
		panic("stats: Quantile of empty sketch")
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	// The target rank mirrors the closest-rank convention: rank r in
	// [0, n-1], counting through the zero bucket first, then the log
	// buckets in ascending value order.
	rank := uint64(q * float64(s.n-1))
	if rank < s.zero {
		if s.min < 0 {
			return s.min
		}
		return 0
	}
	seen := s.zero
	for i, c := range s.counts {
		seen += c
		if rank < seen {
			// Bucket idx covers (γ^(idx-1), γ^idx]; its midpoint-of-ratio
			// representative 2γ^idx/(γ+1) bounds the relative error by α.
			idx := s.offset + i
			v := 2 * math.Pow(s.gamma, float64(idx)) / (s.gamma + 1)
			// Exact bounds beat the representative at the tails.
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}
