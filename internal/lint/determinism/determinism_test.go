package determinism_test

import (
	"testing"

	"github.com/gmrl/househunt/internal/lint/analysistest"
	"github.com/gmrl/househunt/internal/lint/determinism"
)

func TestDeterminismInScope(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "internal/sim/detfix")
}

func TestDeterminismOutOfScope(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "outscope")
}
