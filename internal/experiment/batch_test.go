package experiment

import (
	"reflect"
	"testing"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/faults"
	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/workload"
)

// TestMeasureConvergenceBatchMatchesScalar is the experiment layer of the
// cross-engine differential harness: for every compiled algorithm — the
// Algorithm 3 family, both Algorithm 2 variants and the §6 extensions — a
// measurement taken on the batch fast path must aggregate to exactly the same
// ConvergencePoint as the scalar replicate loop, because per-replicate
// executions are bit-identical.
func TestMeasureConvergenceBatchMatchesScalar(t *testing.T) {
	binary, err := workload.Binary(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	graded := sim.MustEnvironment([]float64{0.3, 0.9, 0.2, 0})
	const reps = 24

	if !BatchEngineEnabled() {
		t.Fatal("batch engine should be enabled by default")
	}
	cases := []struct {
		algo core.Algorithm
		env  sim.Environment
	}{
		{algo.Simple{}, binary},
		{algo.SimplePFSM{}, binary},
		{algo.Optimal{}, binary},
		{algo.Optimal{Literal: true}, binary},
		{algo.Adaptive{}, binary},
		{algo.QualityAware{}, graded},
		{algo.ApproxN{Delta: 0.25}, binary},
		{algo.Quorum{}, binary},
		{algo.Quorum{Multiplier: 2, Assessor: nest.FlipAssessor{P: 0.1}}, binary},
		{algo.Noisy{}, binary},
		{algo.Noisy{Counter: nest.RelativeNoiseCounter{Sigma: 0.2}}, binary},
	}
	for _, tc := range cases {
		cfg := core.RunConfig{N: 96, Env: tc.env, MaxRounds: 4000}
		SetBatchEngine(true)
		if _, ok, reason := core.CompileForBatch(tc.algo, cfg); !ok {
			t.Fatalf("%s: expected batch eligibility, got fallback: %s", tc.algo.Name(), reason)
		}
		batched, err := MeasureConvergence(tc.algo, cfg, reps, "batch-equiv")
		if err != nil {
			t.Fatal(err)
		}

		SetBatchEngine(false)
		scalar, err := MeasureConvergence(tc.algo, cfg, reps, "batch-equiv")
		SetBatchEngine(true)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(batched, scalar) {
			t.Fatalf("%s: batch and scalar measurements diverge:\nbatch  %+v\nscalar %+v",
				tc.algo.Name(), batched, scalar)
		}
		// The literal Optimal variant can deadlock by design; every other
		// cell must solve replicates or the equivalence check is vacuous.
		if batched.Solved == 0 && !reflect.DeepEqual(tc.algo, algo.Optimal{Literal: true}) {
			t.Fatalf("%s: measurement solved no replicates; the equivalence check is vacuous", tc.algo.Name())
		}
	}
}

// TestMeasureConvergenceMatcherAblationsBatchMatchScalar is the experiment
// layer of the matcher-ablation lowering: an E16-style measurement with a
// stock cfg.NewMatcher must take the batch path and aggregate to exactly the
// scalar replicate loop's ConvergencePoint, for both the lockstep and the
// general execution paths.
func TestMeasureConvergenceMatcherAblationsBatchMatchScalar(t *testing.T) {
	env, err := workload.Binary(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const reps = 12
	for _, tc := range []struct {
		name    string
		algo    core.Algorithm
		matcher func() sim.Matcher
	}{
		{"simple+simultaneous", algo.Simple{}, func() sim.Matcher { return &sim.SimultaneousMatcher{} }},
		{"simple+rendezvous", algo.Simple{}, func() sim.Matcher { return &sim.RendezvousMatcher{} }},
		{"optimal+simultaneous", algo.Optimal{}, func() sim.Matcher { return &sim.SimultaneousMatcher{} }},
		{"optimal+rendezvous", algo.Optimal{}, func() sim.Matcher { return &sim.RendezvousMatcher{} }},
	} {
		cfg := core.RunConfig{N: 96, Env: env, MaxRounds: 4000, NewMatcher: tc.matcher}
		if _, ok, reason := core.CompileForBatch(tc.algo, cfg); !ok {
			t.Fatalf("%s: expected batch eligibility, got fallback: %s", tc.name, reason)
		}
		SetBatchEngine(true)
		batched, err := MeasureConvergence(tc.algo, cfg, reps, "matcher-equiv")
		if err != nil {
			t.Fatal(err)
		}
		SetBatchEngine(false)
		scalar, err := MeasureConvergence(tc.algo, cfg, reps, "matcher-equiv")
		SetBatchEngine(true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched, scalar) {
			t.Fatalf("%s: batch and scalar ablation measurements diverge:\nbatch  %+v\nscalar %+v",
				tc.name, batched, scalar)
		}
		if batched.Solved == 0 {
			t.Fatalf("%s: measurement solved no replicates; the check is vacuous", tc.name)
		}
	}
}

// TestMeasureConvergenceFaultedBatchMatchesScalar extends the experiment-layer
// differential check along the adversary axis: a measurement under a
// faults.Spec wrapper must take the batch path (the spec compiles to fault
// lanes) and aggregate to exactly the scalar wrapped colony's
// ConvergencePoint.
func TestMeasureConvergenceFaultedBatchMatchesScalar(t *testing.T) {
	env, err := workload.Binary(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	single, err := workload.Binary(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	const reps = 16
	for _, tc := range []struct {
		name string
		algo core.Algorithm
		env  sim.Environment
		spec faults.Spec
	}{
		// Byzantine lures make full unanimity flicker for count-keyed
		// algorithms (Optimal's decision gate can starve forever), so the
		// Byzantine cell rides on the unanimity-by-commitment Simple family;
		// optimal+byzantine equivalence is still pinned per-round by the
		// algo-level differential grid.
		{"simple+crash", algo.Simple{}, env, faults.Spec{CrashFraction: 0.1, CrashWindow: 30, Salt: 11}},
		{"simplepfsm+byzantine", algo.SimplePFSM{}, env, faults.Spec{ByzantineFraction: 0.03, Salt: 12}},
		{"optimal+sleep", algo.Optimal{}, env, faults.Spec{SleepFraction: 0.15, SleepWindow: 30, Salt: 16}},
		{"adaptive+sleep", algo.Adaptive{}, env, faults.Spec{SleepFraction: 0.2, SleepWindow: 40, Salt: 13}},
		{"quorum+mixed", algo.Quorum{}, env, faults.Spec{CrashFraction: 0.08, CrashWindow: 24, ByzantineFraction: 0.04, SleepFraction: 0.08, SleepWindow: 24, Salt: 14}},
		{"spreader+crash", algo.Spreader{Seeds: 4}, single, faults.Spec{CrashFraction: 0.1, CrashWindow: 20, Salt: 15}},
	} {
		cfg := core.RunConfig{N: 96, Env: tc.env, MaxRounds: 4000, Wrap: tc.spec}
		if _, ok, reason := core.CompileForBatch(tc.algo, cfg); !ok {
			t.Fatalf("%s: expected batch eligibility under a fault spec, got fallback: %s", tc.name, reason)
		}
		SetBatchEngine(true)
		batched, err := MeasureConvergence(tc.algo, cfg, reps, "fault-equiv")
		if err != nil {
			t.Fatal(err)
		}
		SetBatchEngine(false)
		scalar, err := MeasureConvergence(tc.algo, cfg, reps, "fault-equiv")
		SetBatchEngine(true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched, scalar) {
			t.Fatalf("%s: faulted batch and scalar measurements diverge:\nbatch  %+v\nscalar %+v",
				tc.name, batched, scalar)
		}
		if batched.Solved == 0 {
			t.Fatalf("%s: measurement solved no replicates; the check is vacuous", tc.name)
		}
	}
}

// fallbackMatcher is a non-stock matcher (it delegates to Algorithm 1 so
// measurements still solve): the stock ablation models batch-compile since
// the matcher lowering, so forcing the scalar path needs a custom type.
type fallbackMatcher struct{ sim.AlgorithmOneMatcher }

func (fallbackMatcher) Name() string { return "fallback-test" }

// TestMeasureConvergenceScalarFallback exercises the fallback branch. Every
// house-hunting algorithm and every stock matcher now compiles, so the
// fallback is driven by a scalar-only configuration (a custom matcher type)
// instead of an uncompiled algorithm; the batch switch must not change its
// results either (it never engages).
func TestMeasureConvergenceScalarFallback(t *testing.T) {
	env, err := workload.Binary(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.RunConfig{
		N:   64,
		Env: env,
		// The custom matcher type keeps the measurement solving while
		// forcing the scalar path.
		NewMatcher: func() sim.Matcher { return &fallbackMatcher{} },
	}
	_, ok, reason := core.CompileForBatch(algo.Simple{}, cfg)
	if ok {
		t.Fatal("a custom-matcher config should have no batch path")
	}
	if reason == "" {
		t.Fatal("fallback must carry a reason")
	}
	pt, err := MeasureConvergence(algo.Simple{}, cfg, 8, "batch-fallback")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Reps != 8 || pt.Solved == 0 {
		t.Fatalf("fallback measurement implausible: %+v", pt)
	}

	// The Spreader process compiles exactly when the environment has a single
	// good nest (its informed-spread branching equates "good outcome" with
	// "the target"): one good nest takes the batch path, several decline.
	single, err := workload.Binary(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, reason := core.CompileForBatch(algo.Spreader{}, core.RunConfig{N: 64, Env: single}); !ok {
		t.Fatalf("Spreader with one good nest declined the batch path: %q", reason)
	}
	multi, err := workload.Binary(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, reason := core.CompileForBatch(algo.Spreader{}, core.RunConfig{N: 64, Env: multi}); ok || reason == "" {
		t.Fatalf("Spreader with two good nests: ok=%v reason=%q, want scalar fallback with a reason", ok, reason)
	}
}
