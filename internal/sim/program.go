package sim

import "fmt"

// Program is a compiled probabilistic finite state machine: the declarative
// agent.Spec tables of internal/agent lowered to a dense opcode form that the
// batch engine (see Batch) can execute over flat state arrays with no
// interface dispatch, no map lookups and no per-ant heap objects.
//
// A Program state pairs one emit opcode (which environment call to make) with
// one observe opcode (how to fold the call's outcome into the register file)
// and a successor state. The register file is the paper's: a committed nest,
// a remembered count and a perceived quality — exactly the cells of
// agent.Registers that the currently compilable algorithms touch.
//
// The opcode set intentionally covers only what the compiled algorithms need
// today (Algorithm 3 / simple-pfsm); growing it as more algorithms gain state
// tables is a ROADMAP item. An algorithm advertises its compiled form by
// implementing the core package's BatchCompilable interface.
type Program struct {
	// Algorithm is the source algorithm's name, carried into results.
	Algorithm string
	// Init is the index of the initial state.
	Init uint8
	// States is the dense state table; successor indices refer into it.
	States []ProgramState
}

// ProgramState is one compiled PFSM state.
type ProgramState struct {
	// Emit selects the environment call made while in this state.
	Emit EmitOp
	// Observe selects how the outcome updates the registers.
	Observe ObserveOp
	// Next is the state entered after Observe runs.
	Next uint8
}

// EmitOp enumerates the compiled emit behaviours.
type EmitOp uint8

const (
	// EmitSearch performs search().
	EmitSearch EmitOp = iota
	// EmitGotoNest performs go(nest) on the committed nest register.
	EmitGotoNest
	// EmitRecruitPop performs recruit(b, nest) with b drawn as
	// Bernoulli(count/n) when the quality register is positive and b = 0
	// otherwise — Algorithm 3's population-proportional recruitment. The
	// Bernoulli draw consumes ant randomness exactly as the scalar
	// SimpleAnt/SimplePFSM do (no draw when count/n <= 0), which is what
	// keeps batch and scalar executions bit-identical.
	EmitRecruitPop
)

// ObserveOp enumerates the compiled observe behaviours.
type ObserveOp uint8

const (
	// ObserveDiscovery loads nest, count and quality from the outcome — the
	// pattern after search().
	ObserveDiscovery ObserveOp = iota
	// ObserveAdopt adopts the recruiter's nest when the outcome's nest
	// differs from the committed one, setting quality to 1 (a captured ant
	// trusts its recruiter) — the pattern after recruit().
	ObserveAdopt
	// ObserveCount loads only the count register — the pattern after go().
	ObserveCount
)

// Validate checks structural soundness: a non-empty table, an in-range
// initial state, in-range successors and known opcodes.
func (p Program) Validate() error {
	if len(p.States) == 0 {
		return fmt.Errorf("sim: program %q has no states", p.Algorithm)
	}
	if len(p.States) > 256 {
		return fmt.Errorf("sim: program %q has %d states; state ids are 8-bit", p.Algorithm, len(p.States))
	}
	if int(p.Init) >= len(p.States) {
		return fmt.Errorf("sim: program %q initial state %d out of range", p.Algorithm, p.Init)
	}
	for i, st := range p.States {
		if st.Emit > EmitRecruitPop {
			return fmt.Errorf("sim: program %q state %d: unknown emit opcode %d", p.Algorithm, i, st.Emit)
		}
		if st.Observe > ObserveCount {
			return fmt.Errorf("sim: program %q state %d: unknown observe opcode %d", p.Algorithm, i, st.Observe)
		}
		if int(st.Next) >= len(p.States) {
			return fmt.Errorf("sim: program %q state %d: successor %d out of range", p.Algorithm, i, st.Next)
		}
	}
	return nil
}
