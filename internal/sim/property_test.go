package sim

import (
	"testing"
	"testing/quick"

	"github.com/gmrl/househunt/internal/rng"
)

// chaosAgent takes uniformly random legal actions: it remembers every nest it
// has visited and chooses among search, go(visited), recruit(0/1, visited),
// and passive waiting. It exists to drive the engine through arbitrary
// protocol-legal schedules for invariant checking.
type chaosAgent struct {
	src     *rng.Source
	visited []NestID
}

func (c *chaosAgent) Act(int) Action {
	if len(c.visited) == 0 {
		if c.src.Bernoulli(0.5) {
			return Search()
		}
		return Recruit(false, Home)
	}
	nest := c.visited[c.src.Intn(len(c.visited))]
	switch c.src.Intn(4) {
	case 0:
		return Search()
	case 1:
		return Goto(nest)
	case 2:
		return Recruit(true, nest)
	default:
		return Recruit(false, nest)
	}
}

func (c *chaosAgent) Observe(_ int, out Outcome) {
	if out.Nest == Home {
		return
	}
	for _, v := range c.visited {
		if v == out.Nest {
			return
		}
	}
	c.visited = append(c.visited, out.Nest)
}

// TestEngineInvariantsUnderChaos drives random colonies through random legal
// schedules and asserts the §2 model invariants after every round:
//
//  1. population conservation: Σ c(i,r) = n;
//  2. count consistency: every agent's outcome Count equals the engine's
//     end-of-round count of the outcome's reference nest;
//  3. location consistency: recruiters are at home, movers are at their nest;
//  4. capture consistency: a Recruited outcome names a nest some active
//     recruiter advertised this round.
func TestEngineInvariantsUnderChaos(t *testing.T) {
	t.Parallel()
	f := func(seed uint16, nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 2
		k := int(kRaw%6) + 1
		env, err := Uniform(k, k)
		if err != nil {
			return false
		}
		agents := make([]Agent, n)
		root := rng.New(uint64(seed) + 3)
		for i := range agents {
			agents[i] = &chaosAgent{src: root.Split(uint64(i))}
		}
		e, err := New(env, agents, WithSeed(uint64(seed)))
		if err != nil {
			return false
		}
		for r := 0; r < 24; r++ {
			if err := e.Step(); err != nil {
				t.Logf("protocol error under chaos: %v", err)
				return false
			}
			total := 0
			for _, c := range e.Counts() {
				total += c
			}
			if total != n {
				t.Logf("population leak: %v", e.Counts())
				return false
			}
			advertised := make(map[NestID]bool, k)
			for i := 0; i < n; i++ {
				act := e.ActionTaken(i)
				if act.Kind == ActionRecruit && act.Active {
					advertised[act.Nest] = true
				}
			}
			for i := 0; i < n; i++ {
				act := e.ActionTaken(i)
				out := e.Outcome(i)
				switch act.Kind {
				case ActionSearch, ActionGo:
					if e.Location(i) != out.Nest {
						t.Logf("ant %d moved to %d but outcome says %d", i, e.Location(i), out.Nest)
						return false
					}
					if out.Count != e.Count(out.Nest) {
						t.Logf("ant %d count %d != engine %d", i, out.Count, e.Count(out.Nest))
						return false
					}
				case ActionRecruit:
					if e.Location(i) != Home {
						t.Logf("recruiter %d not at home", i)
						return false
					}
					if out.Count != e.Count(Home) {
						t.Logf("recruiter %d home count %d != %d", i, out.Count, e.Count(Home))
						return false
					}
					if out.Recruited {
						// Note: out.Nest may equal act.Nest when capturer and
						// captured advertise the same nest; that is legal.
						if !advertised[out.Nest] {
							t.Logf("ant %d recruited to unadvertised nest %d", i, out.Nest)
							return false
						}
						if !e.Visited(i, out.Nest) {
							t.Logf("recruited ant %d did not learn nest %d", i, out.Nest)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineChaosSequentialEqualsConcurrent cross-checks the two execution
// modes on random chaos colonies.
func TestEngineChaosSequentialEqualsConcurrent(t *testing.T) {
	t.Parallel()
	build := func(seed uint64, n, k int) *Engine {
		env, err := Uniform(k, k)
		if err != nil {
			t.Fatal(err)
		}
		agents := make([]Agent, n)
		root := rng.New(seed + 7)
		for i := range agents {
			agents[i] = &chaosAgent{src: root.Split(uint64(i))}
		}
		e, err := New(env, agents, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	for seed := uint64(1); seed <= 5; seed++ {
		n := 16 + int(seed)*7
		k := 1 + int(seed%4)
		seq := build(seed, n, k)
		con := build(seed, n, k)
		for r := 0; r < 15; r++ {
			if err := seq.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := con.RunConcurrent(15, nil); err != nil {
			t.Fatal(err)
		}
		for i, c := range seq.Counts() {
			if con.Count(NestID(i)) != c {
				t.Fatalf("seed %d: modes diverged at nest %d: %d vs %d",
					seed, i, c, con.Count(NestID(i)))
			}
		}
	}
}
