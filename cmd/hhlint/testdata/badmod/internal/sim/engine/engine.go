// Package engine is a known-bad fixture: it compiles cleanly but holds
// exactly one violation of each hhlint analyzer (plus one extra
// determinism finding), so the end-to-end test can pin the multichecker's
// full output.
package engine

import (
	"math/rand"
	"time"

	"badfix/internal/rng"
)

type lane struct{ scratch []int }

// stepLockstep is a hot root missing its //hh:hotpath annotation.
func stepLockstep(ln *lane) { ln.scratch = ln.scratch[:0] }

//hh:hotpath
//hh:draws one word per ready round
func drawGuarded(src *rng.Source, ready bool) uint64 {
	if ready {
		return src.Uint64() // streamdiscipline: undocumented guard
	}
	return 0
}

//hh:hotpath
func alloc(n int) []int {
	return make([]int, n) // hotpathalloc: make on the hot path
}

//hh:hotpath
func toFloat(n int) float64 {
	return float64(n) // fixedpoint: non-constant float conversion
}

func wallclock(m map[int]int) int64 {
	total := int64(0)
	for k := range m { // determinism: map iteration order
		total += int64(k)
	}
	return total + time.Now().Unix() + int64(rand.Int()) // determinism: wall clock
}

var _ = []any{stepLockstep, drawGuarded, alloc, toFloat, wallclock}
