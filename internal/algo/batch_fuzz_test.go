package algo

import (
	"fmt"
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/faults"
	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/sim"
)

// fuzzDiffCase derives a bounded differential-harness configuration from raw
// fuzz words: the algorithm (all ten compiled forms — quorum/transport, noisy
// perception and the spreader included), colony size, nest count, binary or
// graded quality vector, the extension parameters and the recruitment matcher
// (default Algorithm 1 or a stock ablation) are all decoded from the inputs,
// so the fuzzer explores the same space as randomDiffCases but steered by
// coverage. The decoding is total — every input maps to a valid case — which
// keeps the target mutation-friendly.
func fuzzDiffCase(seed uint64, algoPick, nRaw, kRaw, qualBits, param uint16) diffCase {
	n := 4 + int(nRaw%60)
	maxRounds := 48
	if nRaw&0x8000 != 0 {
		// Big-colony probe: the high bit retargets n to straddle the removed
		// 2^16 fast-path ceiling (65532..65541), so the fuzzer exercises the
		// table/reciprocal crossover on both sides and exactly at the
		// boundary. A short budget keeps the 65k-ant scalar oracle fast.
		n = batchCeiling - 4 + int(nRaw%10)
		maxRounds = 10
	}
	k := 1 + int(kRaw%5)
	quals := make([]float64, k)
	anyGood := false
	for j := 0; j < k; j++ {
		if qualBits&(1<<j) != 0 {
			quals[j] = 1
			anyGood = true
		}
	}
	if !anyGood {
		quals[int(qualBits)%k] = 1 // environments need at least one good nest
	}
	if param%3 == 1 {
		// Graded qualities: deterministic non-binary values derived from the
		// inputs, exercising the quality-weighted and threshold opcodes away
		// from the {0, 1} corners.
		for j := range quals {
			if quals[j] > 0 {
				quals[j] = 0.1 + 0.8*float64((int(param/3)+j*7)%100)/100
			}
		}
	}
	var a core.Algorithm
	switch algoPick % 10 {
	case 0:
		a = Simple{}
	case 1:
		a = SimplePFSM{}
	case 2:
		a = Optimal{}
	case 3:
		a = Optimal{Literal: true}
	case 4:
		a = Adaptive{Tau: 1 + int(param%4), FloorDiv: float64(2 + param%7)}
	case 5:
		a = QualityAware{}
	case 6:
		a = ApproxN{Delta: float64(param%900) / 1000}
	case 7:
		// Quorum: multiplier 1.1..2.85, carry 1..4, docility 0.1..1.0, a flip
		// assessor on a third of the inputs — covering the carry-aware
		// matching, the docility draw and noisy assessment.
		q := Quorum{
			Multiplier: 1.1 + float64(param%8)*0.25,
			Carry:      1 + int(param/8)%4,
			Docility:   float64(1+param%10) / 10,
		}
		if param%3 == 2 {
			q.Assessor = nest.FlipAssessor{P: float64(param%25) / 100}
		}
		a = q
	case 8:
		// Noisy: relative count noise on three quarters of the inputs (the
		// rest run exact estimation, the zero-noise degenerate), plus a flip
		// assessor on a fifth.
		no := Noisy{}
		if param%4 != 0 {
			no.Counter = nest.RelativeNoiseCounter{Sigma: float64(param%40) / 100}
		}
		if param%5 == 1 {
			no.Assessor = nest.FlipAssessor{P: float64(param%20) / 100}
		}
		a = no
	case 9:
		// Spreader: 1..16 seed searchers, or the everyone-searches variant on
		// a fifth of the inputs. The spreading process compiles only for
		// environments with exactly one good nest, so the quality vector is
		// thinned to its first good entry (the decode stays total).
		if param%5 == 4 {
			a = Spreader{SearchAll: true}
		} else {
			a = Spreader{Seeds: 1 + int(param%16)}
		}
		seen := false
		for j := range quals {
			if quals[j] > 0 {
				if seen {
					quals[j] = 0
				}
				seen = true
			}
		}
	}
	// The high algorithm-pick bits select the pairing model. The ablation
	// matchers implement no MatchCarry, so a transporting quorum case is
	// demoted to tandem-only carry — mirroring core.CompileForBatch's gate,
	// which routes carry > 1 ablation configs to the scalar engine.
	matcher := ""
	switch (algoPick / 10) % 3 {
	case 1:
		matcher = "simultaneous"
	case 2:
		matcher = "rendezvous"
	}
	if q, isQuorum := a.(Quorum); isQuorum && matcher != "" {
		q.Carry = 1
		a = q
	}
	return diffCase{
		name:      fmt.Sprintf("fuzz/%s%s/n%d/k%d", a.Name(), matcher, n, k),
		algo:      a,
		n:         n,
		env:       sim.MustEnvironment(quals),
		seeds:     []uint64{seed},
		maxRounds: maxRounds,
		matcher:   matcher,
	}
}

// batchCeiling mirrors sim's batchTableMaxN — the old fast-path ceiling, now
// only the crossover from tabled to reciprocal thresholds.
const batchCeiling = 1 << 16

// FuzzBatchEquivalence fuzzes compiled-program execution against the scalar
// oracle: any input on which the batch engine's per-round populations or
// commitments diverge from the scalar agents is a bug. The checked-in corpus
// under testdata/fuzz seeds one representative case per compiled algorithm;
// CI runs a short -fuzz smoke on top of the corpus replay that plain go test
// performs.
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint16(28), uint16(1), uint16(1), uint16(0))    // simple, k=2
	f.Add(uint64(7), uint16(2), uint16(60), uint16(3), uint16(5), uint16(0))    // optimal, k=4
	f.Add(uint64(42), uint16(3), uint16(12), uint16(0), uint16(0), uint16(2))   // optimal literal, k=1
	f.Add(uint64(9), uint16(4), uint16(40), uint16(2), uint16(3), uint16(13))   // adaptive, graded qualities
	f.Add(uint64(11), uint16(5), uint16(50), uint16(3), uint16(9), uint16(7))   // quality-aware, graded
	f.Add(uint64(13), uint16(6), uint16(33), uint16(2), uint16(7), uint16(450)) // approxn, δ = 0.45
	f.Add(uint64(17), uint16(6), uint16(24), uint16(1), uint16(2), uint16(0))   // approxn, δ = 0
	f.Add(uint64(19), uint16(7), uint16(40), uint16(1), uint16(3), uint16(4))   // quorum, M=2.1 carry 1 docility 0.5
	f.Add(uint64(23), uint16(7), uint16(36), uint16(2), uint16(3), uint16(9))   // quorum, carry 2, full docility
	f.Add(uint64(29), uint16(8), uint16(44), uint16(2), uint16(5), uint16(13))  // noisy, σ = 0.13
	f.Add(uint64(31), uint16(8), uint16(30), uint16(1), uint16(1), uint16(0))   // noisy, zero noise (exact degenerate)
	f.Add(uint64(37), uint16(10), uint16(40), uint16(2), uint16(3), uint16(0))  // simple + simultaneous ablation
	f.Add(uint64(41), uint16(22), uint16(36), uint16(2), uint16(3), uint16(0))  // optimal + rendezvous ablation
	f.Add(uint64(43), uint16(17), uint16(32), uint16(1), uint16(1), uint16(4))  // quorum (carry demoted to 1) + simultaneous
	f.Add(uint64(47), uint16(25), uint16(28), uint16(2), uint16(5), uint16(9))  // quality-aware + rendezvous, graded
	f.Add(uint64(53), uint16(9), uint16(40), uint16(2), uint16(0), uint16(3))   // spreader, 4 seed searchers
	f.Add(uint64(59), uint16(9), uint16(28), uint16(1), uint16(1), uint16(9))   // spreader, everyone searches
	// Big-colony seeds (high nRaw bit): one cell below, at, and above the
	// removed 2^16 ceiling, covering the population, quality-scaled and
	// adaptive recruit kernels across the table/reciprocal crossover.
	f.Add(uint64(61), uint16(0), uint16(0x8004), uint16(1), uint16(1), uint16(0))  // simple, n=65534
	f.Add(uint64(67), uint16(5), uint16(0x8006), uint16(2), uint16(3), uint16(13)) // quality-aware, n=65536, graded
	f.Add(uint64(71), uint16(4), uint16(0x8000), uint16(1), uint16(1), uint16(2))  // adaptive, n=65540
	f.Fuzz(func(t *testing.T, seed uint64, algoPick, nRaw, kRaw, qualBits, param uint16) {
		assertTraceEquivalence(t, fuzzDiffCase(seed, algoPick, nRaw, kRaw, qualBits, param))
	})
}

// fuzzFaultSpec decodes an always-enabled fault plan from a raw fuzz word:
// two-bit intensity fields for the crash, Byzantine and sleep fractions (an
// all-zero decode falls back to a 10% crash plan so every input actually
// exercises the fault lanes), window bits for the scheduling horizons, and a
// small salt family. Total, like fuzzDiffCase.
func fuzzFaultSpec(faultRaw uint16) faults.Spec {
	spec := faults.Spec{
		CrashFraction:     float64(faultRaw%4) * 0.08,
		CrashWindow:       5 + int((faultRaw/64)%40),
		ByzantineFraction: float64((faultRaw/4)%4) * 0.05,
		SleepFraction:     float64((faultRaw/16)%4) * 0.08,
		SleepWindow:       5 + int((faultRaw/128)%40),
		Salt:              uint64(faultRaw%7) + 11,
	}
	if !spec.Enabled() {
		spec.CrashFraction = 0.1
	}
	return spec
}

// FuzzBatchFaultEquivalence fuzzes the fault lanes against the scalar fault
// wrappers: the decoded case runs with a crash/Byzantine/sleep adversary
// injected on BOTH sides (faults.Spec wrapping the scalar colony, the same
// spec compiled into the batch program), and any divergence in per-round
// populations, commitments or the faulty census is a bug. The corpus seeds
// cover each fault class alone and mixed plans over representative
// algorithms, the spreader and an ablation matcher.
func FuzzBatchFaultEquivalence(f *testing.F) {
	f.Add(uint64(3), uint16(0), uint16(40), uint16(1), uint16(1), uint16(0), uint16(2))      // simple + 16% crash
	f.Add(uint64(5), uint16(2), uint16(48), uint16(3), uint16(5), uint16(0), uint16(8))      // optimal + 10% byzantine
	f.Add(uint64(7), uint16(4), uint16(36), uint16(2), uint16(3), uint16(13), uint16(32))    // adaptive + 16% sleep, graded
	f.Add(uint64(11), uint16(7), uint16(40), uint16(1), uint16(3), uint16(4), uint16(149))   // quorum + mixed crash/byzantine
	f.Add(uint64(13), uint16(8), uint16(44), uint16(2), uint16(5), uint16(13), uint16(54))   // noisy + mixed byzantine/sleep
	f.Add(uint64(17), uint16(9), uint16(40), uint16(2), uint16(0), uint16(3), uint16(18))    // spreader + sleep
	f.Add(uint64(19), uint16(10), uint16(36), uint16(2), uint16(3), uint16(0), uint16(1))    // simple + simultaneous + crash
	f.Add(uint64(23), uint16(5), uint16(50), uint16(3), uint16(9), uint16(7), uint16(214))   // quality-aware + all three classes
	f.Add(uint64(29), uint16(0), uint16(0x8006), uint16(1), uint16(1), uint16(0), uint16(2)) // simple + crash at n=65536, the ceiling cell
	f.Fuzz(func(t *testing.T, seed uint64, algoPick, nRaw, kRaw, qualBits, param, faultRaw uint16) {
		c := fuzzDiffCase(seed, algoPick, nRaw, kRaw, qualBits, param)
		c.faults = fuzzFaultSpec(faultRaw)
		c.name += "+faults"
		assertTraceEquivalence(t, c)
	})
}

// fuzzSchedule decodes an adaptive adversary from a raw fuzz word: the stock
// schedules with fuzzed parameters plus the kitchen-sink stress adversary
// (every op kind, per-ant adversary-stream draws). Total, like the other
// decoders.
func fuzzSchedule(schedRaw uint16) (func() faults.Schedule, string) {
	switch schedRaw % 4 {
	case 0:
		per, budget := 1+int((schedRaw/4)%3), 2+int((schedRaw/16)%30)
		return func() faults.Schedule { return &faults.TargetedCrash{PerRound: per, Budget: budget} }, "targeted"
	case 1:
		return func() faults.Schedule { return &faults.AdaptiveLurer{} }, "lurer"
	case 2:
		p := 0.01 + float64((schedRaw/4)%50)/500
		mean := 1 + float64((schedRaw/256)%12)
		return func() faults.Schedule { return faults.Churn{CrashProb: p, MeanDowntime: mean} }, "churn"
	default:
		return func() faults.Schedule { return stressSchedule{} }, "stress"
	}
}

// FuzzBatchAdaptiveFaultEquivalence fuzzes the adaptive fault-scheduling
// subsystem end to end: the decoded case runs with a static fault plan AND an
// adaptive schedule on both engines (the scalar schedule controller driven
// from the engine's round hook against the batch lane's mutation pass), and
// any divergence in per-round populations or commitments is a bug — in the
// snapshot semantics, the adversary-stream consumption, or the
// crash-recovery re-entry. The corpus covers each stock schedule, the stress
// adversary (every op kind), a recovery-heavy churn cell (one-round mean
// downtime), a non-default adversary salt, and the 2^16 ceiling-boundary
// colony.
func FuzzBatchAdaptiveFaultEquivalence(f *testing.F) {
	f.Add(uint64(3), uint16(0), uint16(40), uint16(1), uint16(1), uint16(0), uint16(2), uint16(16))       // simple + crash + targeted decapitation
	f.Add(uint64(5), uint16(2), uint16(48), uint16(3), uint16(5), uint16(0), uint16(8), uint16(5))        // optimal + byzantine + adaptive lurer
	f.Add(uint64(7), uint16(7), uint16(40), uint16(1), uint16(3), uint16(4), uint16(149), uint16(36))     // quorum + mixed faults + targeted
	f.Add(uint64(11), uint16(4), uint16(36), uint16(2), uint16(3), uint16(13), uint16(32), uint16(102))   // adaptive + sleep + recovery-heavy churn (mean downtime 1)
	f.Add(uint64(13), uint16(8), uint16(44), uint16(2), uint16(5), uint16(13), uint16(54), uint16(3))     // noisy + mixed + stress (all op kinds)
	f.Add(uint64(17), uint16(5), uint16(50), uint16(3), uint16(9), uint16(7), uint16(214), uint16(1))     // quality-aware, graded + lurer
	f.Add(uint64(19), uint16(10), uint16(36), uint16(2), uint16(3), uint16(0), uint16(1), uint16(0x8003)) // simple + simultaneous + stress, salted adversary stream
	f.Add(uint64(23), uint16(9), uint16(40), uint16(2), uint16(0), uint16(3), uint16(18), uint16(406))    // spreader + sleep + churn
	f.Add(uint64(29), uint16(0), uint16(0x8006), uint16(1), uint16(1), uint16(0), uint16(2), uint16(102)) // simple + crash + churn at n=65536, the ceiling cell
	f.Fuzz(func(t *testing.T, seed uint64, algoPick, nRaw, kRaw, qualBits, param, faultRaw, schedRaw uint16) {
		c := fuzzDiffCase(seed, algoPick, nRaw, kRaw, qualBits, param)
		c.faults = fuzzFaultSpec(faultRaw)
		sched, tag := fuzzSchedule(schedRaw)
		if tag == "lurer" && c.faults.ByzantineFraction == 0 {
			// A lurer schedule is a no-op without Byzantine ants to re-aim.
			c.faults.ByzantineFraction = 0.1
		}
		if schedRaw&0x8000 != 0 {
			c.faults.ScheduleSalt = uint64(schedRaw)
		}
		c.sched = sched
		c.name += "+sched-" + tag
		assertTraceEquivalence(t, c)
	})
}
