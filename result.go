package househunt

import (
	"fmt"
	"io"
	"strings"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/trace"
)

// RoundSnapshot is one round of a traced execution: populations and committed
// ants per nest (index 0 is the home nest).
type RoundSnapshot struct {
	Round       int
	Populations []int
	Commitments []int
}

// Result reports one colony execution.
type Result struct {
	// Solved is true when the colony converged within the round budget.
	Solved bool
	// Winner is the unanimously chosen nest (1-based; 0 when unsolved).
	Winner int
	// WinnerQuality is the chosen nest's quality.
	WinnerQuality float64
	// Rounds is the round of convergence (or the rounds executed when
	// unsolved).
	Rounds int
	// Algorithm is the algorithm that ran.
	Algorithm string
	// Commitments is the final per-nest commitment census (index 0 counts
	// uncommitted ants).
	Commitments []int
	// FaultyAnts counts ants excluded from the census by fault injection.
	FaultyAnts int

	tr *trace.Trace
}

// newResult converts the internal result (and optional trace) to the public
// shape.
func newResult(res core.Result, env sim.Environment, tr *trace.Trace) *Result {
	out := &Result{
		Solved:        res.Solved,
		Winner:        int(res.Winner),
		WinnerQuality: res.WinnerQuality,
		Rounds:        res.Rounds,
		Algorithm:     res.Algorithm,
		FaultyAnts:    res.FinalCensus.Faulty,
		tr:            tr,
	}
	out.Commitments = append([]int(nil), res.FinalCensus.Committed...)
	_ = env
	return out
}

// Traced reports whether the run recorded a history.
func (r *Result) Traced() bool { return r.tr != nil }

// History returns the per-round snapshots of a traced run (nil otherwise).
func (r *Result) History() []RoundSnapshot {
	if r.tr == nil {
		return nil
	}
	rounds := r.tr.Rounds()
	out := make([]RoundSnapshot, len(rounds))
	for i, rec := range rounds {
		out[i] = RoundSnapshot{
			Round:       rec.Round,
			Populations: append([]int(nil), rec.Populations...),
			Commitments: append([]int(nil), rec.Commitments...),
		}
	}
	return out
}

// WriteCSV exports the traced history as CSV. It fails on untraced runs.
func (r *Result) WriteCSV(w io.Writer) error {
	if r.tr == nil {
		return fmt.Errorf("househunt: run was not traced; use WithTracing")
	}
	return r.tr.WriteCSV(w)
}

// WriteJSON exports the traced history as JSON. It fails on untraced runs.
func (r *Result) WriteJSON(w io.Writer) error {
	if r.tr == nil {
		return fmt.Errorf("househunt: run was not traced; use WithTracing")
	}
	return r.tr.WriteJSON(w)
}

// RenderPlot draws the traced commitment dynamics as an ASCII chart (empty
// string on untraced runs). Width and height <= 0 select defaults.
func (r *Result) RenderPlot(width, height int) string {
	if r.tr == nil {
		return ""
	}
	return r.tr.RenderPlot(trace.PlotOptions{Width: width, Height: height, Commitments: true})
}

// RenderPopulationPlot draws the physical nest populations instead of the
// commitment census (empty string on untraced runs).
func (r *Result) RenderPopulationPlot(width, height int) string {
	if r.tr == nil {
		return ""
	}
	return r.tr.RenderPlot(trace.PlotOptions{Width: width, Height: height})
}

// Summary renders a one-paragraph human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	if r.Solved {
		fmt.Fprintf(&b, "solved: colony converged on nest %d (quality %.2f) at round %d using %s",
			r.Winner, r.WinnerQuality, r.Rounds, r.Algorithm)
	} else {
		fmt.Fprintf(&b, "unsolved: no convergence within %d rounds using %s", r.Rounds, r.Algorithm)
	}
	if r.FaultyAnts > 0 {
		fmt.Fprintf(&b, " (%d faulty ants excluded)", r.FaultyAnts)
	}
	return b.String()
}
