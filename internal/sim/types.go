// Package sim implements the synchronous execution model of Ghaffari, Musco,
// Radeva and Lynch, "Distributed House-Hunting in Ant Colonies" (PODC 2015),
// Section 2.
//
// The environment consists of a home nest (nest 0) and k candidate nests
// (1..k) with fixed qualities. A colony of n agents executes in synchronous
// rounds; in each round every agent performs exactly one environment call:
//
//   - search():      move to a uniformly random candidate nest,
//   - go(i):         move to a previously visited candidate nest i,
//   - recruit(b, i): move to the home nest and participate in the randomized
//     recruitment pairing of the paper's Algorithm 1 (b=1 recruits actively
//     for nest i; b=0 waits to be recruited).
//
// All counts returned by the environment are END-of-round populations: the
// engine resolves a round by first collecting every agent's action, then
// applying all moves and the recruitment matching, then computing counts, and
// only then delivering return values. This matches the paper's definition
// c(i,r) = |{a : ℓ(a,r) = i}|.
//
// The engine offers two execution modes with identical semantics and
// identical (seed-determined) randomness: a fast sequential mode and a
// goroutine-per-ant concurrent mode used to validate the model under real
// concurrency.
package sim

import (
	"fmt"
)

// NestID identifies a nest. Home is 0; candidate nests are 1..K.
type NestID int

// Home is the home nest: the colony's origin and the only place where
// recruitment happens.
const Home NestID = 0

// ActionKind enumerates the three environment calls. The zero value is
// invalid so that a forgotten action is caught by validation.
type ActionKind int

// The three calls of the paper's model.
const (
	// ActionSearch is search(): visit a uniformly random candidate nest.
	ActionSearch ActionKind = iota + 1
	// ActionGo is go(i): revisit a known candidate nest.
	ActionGo
	// ActionRecruit is recruit(b, i): return home and join the pairing.
	ActionRecruit
)

// String names the action kind for error messages and traces.
func (k ActionKind) String() string {
	switch k {
	case ActionSearch:
		return "search"
	case ActionGo:
		return "go"
	case ActionRecruit:
		return "recruit"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one agent's choice for a round: exactly one environment call.
// Use the Search, Goto and Recruit constructors rather than struct literals.
type Action struct {
	// Kind selects which environment call is performed.
	Kind ActionKind
	// Nest is the argument of go(i) or recruit(·, i). For recruit it is the
	// nest the ant advertises; the special value Home (0) is permitted for
	// passive recruitment by ants that know no candidate nest yet.
	Nest NestID
	// Active is recruit's b flag: true recruits actively for Nest.
	Active bool
	// Carry extends recruit for the §6 transport extension: an active
	// recruiter may capture up to Carry ants in one round (values < 1 mean
	// 1, the paper's tandem run). The base model of §2 merges tandem runs
	// and transports, so core algorithms leave this at the default; the
	// quorum-transport extension sets Carry ≈ 3 after quorum, reflecting
	// that direct transport is about three times faster than tandem walking
	// (Pratt 2010, the paper's [21]).
	Carry int
}

// Search returns the search() action.
func Search() Action { return Action{Kind: ActionSearch} }

// Goto returns the go(i) action.
func Goto(i NestID) Action { return Action{Kind: ActionGo, Nest: i} }

// Recruit returns the recruit(b, i) action.
func Recruit(active bool, i NestID) Action {
	return Action{Kind: ActionRecruit, Nest: i, Active: active}
}

// Transport returns an active recruit(1, i) that may carry up to carry ants
// in one round (the §6 transport extension; see Action.Carry).
func Transport(i NestID, carry int) Action {
	return Action{Kind: ActionRecruit, Nest: i, Active: true, Carry: carry}
}

// Outcome is the environment's reply to an agent's action, delivered after
// the round resolves.
//
// The fields Recruited, Succeeded and SelfPaired are instrumentation: the
// paper's ants cannot observe Succeeded or SelfPaired directly (and detect
// Recruited only by comparing Nest to their input). Algorithms must not read
// them; experiments and tests may.
type Outcome struct {
	// Nest is: the discovered nest for search; the visited nest for go; the
	// learned nest j for recruit (the recruiter's nest if this ant was
	// captured, otherwise the ant's own input).
	Nest NestID
	// Quality is the quality of Nest. For recruit outcomes it is 0; the model
	// gives recruiting ants no quality information.
	Quality float64
	// Count is the end-of-round population: c(Nest, r) for search/go, and
	// c(Home, r) for recruit.
	Count int
	// Recruited reports that the ant was captured by another recruiter.
	Recruited bool
	// Captures counts how many ants this recruiter captured this round
	// (0 or 1 in the base model; up to Carry with transports).
	// Instrumentation only.
	Captures int
	// Succeeded reports that this ant actively recruited and captured an ant
	// (possibly itself; see SelfPaired). Instrumentation only.
	Succeeded bool
	// SelfPaired reports that the matcher paired the ant with itself, which
	// the paper permits when an active recruiter draws itself from the pool.
	SelfPaired bool
}

// Agent is an ant: a (typically probabilistic) state machine that performs
// exactly one environment call per round.
//
// Act is called once at the start of round r and must return the agent's
// action. Observe is called once after the round resolves with the action's
// outcome. The engine guarantees Act/Observe alternate, starting with Act at
// round 1, and that both are called exactly once per round.
type Agent interface {
	Act(round int) Action
	Observe(round int, out Outcome)
}

// Environment is the immutable nest landscape: K candidate nests and their
// qualities. The zero value is an empty environment with no candidate nests;
// construct with NewEnvironment.
type Environment struct {
	qualities []float64 // index 1..K; index 0 is the home nest with quality 0
}

// NewEnvironment builds an environment from the candidate nest qualities
// (qualities[0] is nest 1's quality, and so on). Qualities must lie in [0,1];
// the paper's binary setting uses exactly {0,1} and requires at least one
// good nest, which is also enforced here (quality > 0 counts as good).
func NewEnvironment(qualities []float64) (Environment, error) {
	if len(qualities) == 0 {
		return Environment{}, fmt.Errorf("sim: environment needs at least one candidate nest")
	}
	anyGood := false
	qs := make([]float64, len(qualities)+1)
	for i, q := range qualities {
		if q < 0 || q > 1 {
			return Environment{}, fmt.Errorf("sim: nest %d quality %v outside [0,1]", i+1, q)
		}
		qs[i+1] = q
		if q > 0 {
			anyGood = true
		}
	}
	if !anyGood {
		return Environment{}, fmt.Errorf("sim: environment must contain at least one good nest (paper §2)")
	}
	return Environment{qualities: qs}, nil
}

// MustEnvironment is NewEnvironment for tests and examples with known-good
// literals; it panics on error.
func MustEnvironment(qualities []float64) Environment {
	env, err := NewEnvironment(qualities)
	if err != nil {
		panic(err)
	}
	return env
}

// Uniform returns an environment of k nests, good of which have quality 1 and
// the rest 0. The good nests are the lowest-numbered ones (nest identity is
// exchangeable under the model's uniform search, so placement is irrelevant).
func Uniform(k, good int) (Environment, error) {
	if k <= 0 || good <= 0 || good > k {
		return Environment{}, fmt.Errorf("sim: invalid uniform environment k=%d good=%d", k, good)
	}
	qs := make([]float64, k)
	for i := 0; i < good; i++ {
		qs[i] = 1
	}
	return NewEnvironment(qs)
}

// K returns the number of candidate nests.
func (e Environment) K() int {
	if len(e.qualities) == 0 {
		return 0
	}
	return len(e.qualities) - 1
}

// Quality returns q(i). The home nest has quality 0. Out-of-range ids report
// quality 0 rather than panicking: the engine validates ids separately.
func (e Environment) Quality(i NestID) float64 {
	if i <= 0 || int(i) >= len(e.qualities) {
		return 0
	}
	return e.qualities[i]
}

// Good reports whether nest i has positive quality (a "good" nest in the
// paper's binary setting; an acceptable one in the §6 non-binary extension).
func (e Environment) Good(i NestID) bool { return e.Quality(i) > 0 }

// GoodNests returns the ids of all good nests in ascending order.
func (e Environment) GoodNests() []NestID {
	var out []NestID
	for i := 1; i <= e.K(); i++ {
		if e.Good(NestID(i)) {
			out = append(out, NestID(i))
		}
	}
	return out
}

// BestNests returns the ids of the maximum-quality nests in ascending order.
func (e Environment) BestNests() []NestID {
	best := 0.0
	for i := 1; i <= e.K(); i++ {
		if q := e.Quality(NestID(i)); q > best {
			best = q
		}
	}
	var out []NestID
	for i := 1; i <= e.K(); i++ {
		if e.Quality(NestID(i)) == best {
			out = append(out, NestID(i))
		}
	}
	return out
}

// Qualities returns a copy of the candidate qualities indexed 1..K (index 0
// is the home nest's 0).
func (e Environment) Qualities() []float64 {
	return append([]float64(nil), e.qualities...)
}
