// Package determinism defines an analyzer that enforces replicate
// determinism in the engine packages: identical (spec, seed) inputs must
// produce identical results, so nothing in scope may iterate a map in
// observable order, read the wall clock, or draw from the global
// math/rand stream.
//
// Exemptions are explicit and carry a justification:
//
//	//hh:sorted <why>    — map range whose results are sorted (or otherwise
//	                       order-insensitive) before use
//	//hh:wallclock <why> — deliberate wall-clock read (e.g. benchmarking
//	                       code that never feeds simulation state)
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"github.com/gmrl/househunt/internal/lint/analysis"
	"github.com/gmrl/househunt/internal/lint/hhannot"
)

// Scope limits the analyzer to packages whose import path contains one of
// these substrings. An empty slice checks every package.
var Scope = []string{"internal/sim", "internal/core", "internal/algo", "internal/faults"}

// bannedImports are sources of nondeterminism that must never be linked
// into engine packages; all randomness flows through seeded rng.Source.
var bannedImports = []string{"math/rand", "math/rand/v2"}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid map iteration order, wall-clock reads, and global math/rand in engine packages",
	Run:  run,
}

func inScope(path string) bool {
	if len(Scope) == 0 {
		return true
	}
	for _, s := range Scope {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	annots := hhannot.NewMap(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, banned := range bannedImports {
				if path == banned {
					pass.Reportf(imp.Pos(), "import of %s: engine packages must draw only from seeded rng.Source streams", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok && !annots.Has(n, "sorted") {
					pass.Reportf(n.Pos(), "map range iteration order is nondeterministic (sort first and annotate //hh:sorted <why>)")
				}
			case *ast.CallExpr:
				if name, ok := pkgFuncName(pass, n, "time"); ok {
					switch name {
					case "Now", "Since", "Until":
						if !annots.Has(n, "wallclock") {
							pass.Reportf(n.Pos(), "time.%s reads the wall clock; replicate results must depend only on (spec, seed) (annotate //hh:wallclock <why> if deliberate)", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// pkgFuncName reports the function name if call invokes a package-level
// function of the package imported under pkgName's path.
func pkgFuncName(pass *analysis.Pass, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}
