package sim

import (
	"github.com/gmrl/househunt/internal/rng"
)

// Matcher computes one round's recruitment assignment over the recruiting
// set R (the ants that called recruit this round). Implementations work in
// slot space: slot t ∈ [0, n) is the t-th recruiting ant in engine order; the
// engine maps slots back to ant indices.
//
// Match must fill:
//
//   - capturedBy[t] = slot of the recruiter that captured slot t, or -1 if t
//     was not captured. A self-pair is capturedBy[t] == t.
//   - succeeded[s]  = true iff slot s actively recruited and captured a slot.
//
// active[t] reports whether slot t called recruit(1, ·). Implementations may
// use scratch space owned by the matcher; the engine never calls Match
// concurrently on one matcher instance.
type Matcher interface {
	Match(n int, active []bool, src *rng.Source, capturedBy []int32, succeeded []bool)
	// Name identifies the matcher in benchmarks and ablation tables.
	Name() string
}

// CarryMatcher is implemented by matchers that support the §6 transport
// extension: an active slot t may capture up to carry[t] ants in one round.
// carry may be nil, meaning capacity 1 everywhere, in which case the process
// must be identical to Match (including its randomness).
type CarryMatcher interface {
	Matcher
	MatchCarry(n int, active []bool, carry []int, src *rng.Source, capturedBy []int32, succeeded []bool)
}

// sizedMatcher is implemented by the stock matchers: Reserve pre-sizes the
// internal scratch for pools of up to n slots, so a freshly built engine or
// batch lane never grows matcher buffers mid-run (the recruiting set widens
// over an execution, and lazy growth would re-allocate at each new maximum).
type sizedMatcher interface {
	Reserve(n int)
}

// CaptureLister is implemented by matchers that additionally record which
// slots were captured. Captures returns the slots captured by the most
// recent Match/MatchCarry call (self-pairs included), in capture order; the
// slice is matcher-owned scratch, valid until the next call. Captures are
// sparse — a consumer folding only captured slots touches a fraction of the
// colony instead of scanning the whole capture table, which is why the batch
// engine prefers this interface when the matcher offers it.
type CaptureLister interface {
	Matcher
	Captures() []int32
}

// Per-slot scratch bits of AlgorithmOneMatcher's packed status column. One
// byte per slot keeps the three flags the inner loops test on the same cache
// line, where the separate bool/int columns they summarize span ten times the
// footprint: the permutation scan and the target-blocking check are the
// matching hot path, and both resolve with a single byte load here.
// slotActive must stay at bit 0: the candidate-compaction pass advances its
// write cursor by `status & slotActive` to stay branch-free.
const (
	slotActive    uint8 = 1 << iota // slot called recruit(1, ·)
	slotCaptured                    // capturedBy[slot] >= 0
	slotSucceeded                   // succeeded[slot]
)

// AlgorithmOneMatcher is the paper's Algorithm 1, reproduced exactly:
//
//	M ← ∅  (a set of ordered pairs)
//	P ← uniform random permutation of R
//	for i = 1..|P|:
//	    if a_P(i) ∈ S (active) and (·, a_P(i)) ∉ M:
//	        a' ← uniform random ant from R        // may be a_P(i) itself
//	        if (a', ·) ∉ M and (·, a') ∉ M:
//	            M ← M ∪ {(a_P(i), a')}
//
// An ant captured earlier in the permutation loses its chance to recruit; a
// drawn ant that already recruited or was already captured blocks the pair
// (no retry). Self-pairs are possible and count as a success whose captured
// ant learns its own nest, matching the paper's remark that a lone ant "is
// forced to recruit itself".
//
// The zero value is ready to use; the matcher grows internal scratch buffers
// as needed and is not safe for concurrent use.
type AlgorithmOneMatcher struct {
	perm     []int32
	cand     []int32
	status   []uint8
	captures []int32
}

var (
	_ Matcher       = (*AlgorithmOneMatcher)(nil)
	_ CarryMatcher  = (*AlgorithmOneMatcher)(nil)
	_ CaptureLister = (*AlgorithmOneMatcher)(nil)
)

// Captures implements CaptureLister.
//
//hh:hotpath
func (m *AlgorithmOneMatcher) Captures() []int32 { return m.captures }

// Reserve pre-sizes the scratch for pools of up to n slots.
//
//hh:coldpath grows only to a new maximum pool size; steady-state calls are no-ops
func (m *AlgorithmOneMatcher) Reserve(n int) {
	if cap(m.perm) < n {
		m.perm = make([]int32, n)
		m.cand = make([]int32, n)
		m.status = make([]uint8, n)
		m.captures = make([]int32, 0, n)
	}
}

// Name implements Matcher.
func (m *AlgorithmOneMatcher) Name() string { return "algorithm1" }

// Match implements Matcher with the paper's sequential pairing process.
//
//hh:hotpath
//hh:draws delegates to MatchCarry with nil carry: identical draw sequence
func (m *AlgorithmOneMatcher) Match(n int, active []bool, src *rng.Source, capturedBy []int32, succeeded []bool) {
	m.MatchCarry(n, active, nil, src, capturedBy, succeeded)
}

// MatchCarry implements CarryMatcher: the paper's process generalized so slot
// a draws up to carry[a] targets (each draw independent and lost if blocked,
// exactly like the single draw of Algorithm 1). With carry nil or all-ones
// the process — including its random draw sequence — is exactly Algorithm 1.
//
//hh:hotpath
//hh:draws PermInto32(n) then one Uint64n(n) per unblocked candidate draw; all-passive rounds PermAdvance(n) only
func (m *AlgorithmOneMatcher) MatchCarry(n int, active []bool, carry []int, src *rng.Source, capturedBy []int32, succeeded []bool) {
	m.captures = m.captures[:0]
	if n == 0 {
		return
	}
	capturedBy = capturedBy[:n]
	succeeded = succeeded[:n]
	active = active[:n]
	for t := range capturedBy {
		capturedBy[t] = -1
	}
	for t := range succeeded {
		succeeded[t] = false
	}
	m.Reserve(n)
	anyActive := false
	for _, a := range active {
		if a {
			anyActive = true
			break
		}
	}
	if !anyActive {
		// Only active slots draw targets, so an all-passive round consumes
		// nothing beyond the permutation and assigns nobody: advancing the
		// stream by the permutation's draws — values unread — is
		// draw-for-draw identical. (Algorithm 2 colonies recruit
		// all-passively in three of their four block rounds until finals
		// appear, so this is a common case on that path.)
		src.PermAdvance(n)
		return
	}
	perm := m.perm[:n]
	status := m.status[:n]
	for t, a := range active {
		s := uint8(0)
		if a {
			s = slotActive
		}
		status[t] = s
	}
	src.PermInto32(perm)

	// Compact the active slots out of the permutation before scanning. The
	// activity pattern is data-dependent noise, so testing it inside the
	// scan mispredicts constantly; the compaction pass is branch-free (the
	// cursor advances by the active bit) and the scan then visits only
	// candidates, whose captured-test is rarely taken. Activity is fixed
	// for the round, so compacting up front is order-identical to testing
	// lazily.
	cand := m.cand[:n]
	w := 0
	for _, a32 := range perm {
		cand[w] = a32
		w += int(status[a32] & slotActive)
	}

	// The target draw is Intn(n) spelled as the one-level Uint64n call: the
	// two-level Intn → Uint64n tree costs a second dynamic call per draw on
	// the hottest loop of the engine, and n is already validated positive.
	un := uint64(n)
	if carry == nil {
		// Capacity-1 fast path: the capacity lookup is loop-invariant.
		for _, a32 := range cand[:w] {
			a := int(a32)
			if status[a]&slotCaptured != 0 {
				continue
			}
			target := int(src.Uint64n(un))
			if status[target]&(slotCaptured|slotSucceeded) != 0 {
				continue
			}
			status[target] |= slotCaptured
			capturedBy[target] = int32(a)
			m.captures = append(m.captures, int32(target)) //hh:allocok within Reserve(n) capacity; at most n captures
			status[a] |= slotSucceeded
			succeeded[a] = true
		}
		return
	}
	for _, a32 := range cand[:w] {
		a := int(a32)
		if status[a]&slotCaptured != 0 {
			continue
		}
		draws := 1
		if carry[a] > 1 {
			draws = carry[a]
		}
		for d := 0; d < draws; d++ {
			target := int(src.Uint64n(un))
			if status[target]&(slotCaptured|slotSucceeded) != 0 {
				continue
			}
			status[target] |= slotCaptured
			capturedBy[target] = int32(a)
			m.captures = append(m.captures, int32(target)) //hh:allocok within Reserve(n) capacity; at most n captures
			status[a] |= slotSucceeded
			succeeded[a] = true
			if target == a {
				// A self-pair consumes the recruiter itself; it cannot keep
				// carrying others, matching the lone-ant semantics of §3.
				break
			}
		}
	}
}

// SimultaneousMatcher is an ablation model ("other natural models" per the
// paper's §2 remark): every active ant draws a target simultaneously; each
// ant drawn by one or more recruiters is captured by one of them chosen
// uniformly at random. Unlike Algorithm 1, a recruiter can simultaneously be
// captured and succeed, and no permutation priority exists.
type SimultaneousMatcher struct {
	picks    []int32
	seen     []int32
	captures []int32
}

var (
	_ Matcher       = (*SimultaneousMatcher)(nil)
	_ CaptureLister = (*SimultaneousMatcher)(nil)
)

// Captures implements CaptureLister.
//
//hh:hotpath
func (m *SimultaneousMatcher) Captures() []int32 { return m.captures }

// Reserve pre-sizes the scratch for pools of up to n slots.
//
//hh:coldpath grows only to a new maximum pool size; steady-state calls are no-ops
func (m *SimultaneousMatcher) Reserve(n int) {
	if cap(m.picks) < n {
		m.picks = make([]int32, n)
		m.seen = make([]int32, n)
		m.captures = make([]int32, 0, n)
	}
}

// Name implements Matcher.
func (m *SimultaneousMatcher) Name() string { return "simultaneous" }

// Match implements Matcher.
//
//hh:hotpath
//hh:draws one Uint64n(n) per active slot in slot order, then one reservoir word per extra contender in scan order
func (m *SimultaneousMatcher) Match(n int, active []bool, src *rng.Source, capturedBy []int32, succeeded []bool) {
	m.captures = m.captures[:0]
	if n == 0 {
		return
	}
	capturedBy = capturedBy[:n]
	succeeded = succeeded[:n]
	active = active[:n]
	for t := range capturedBy {
		capturedBy[t] = -1
	}
	for t := range succeeded {
		succeeded[t] = false
	}
	m.Reserve(n)
	picks := m.picks[:n]
	un := uint64(n)
	anyActive := false
	for t := 0; t < n; t++ {
		picks[t] = -1
		if active[t] {
			picks[t] = int32(src.Uint64n(un)) // Intn(n), one call level
			anyActive = true
		}
	}
	if !anyActive {
		return // nobody picked: no reservoir draws, no captures
	}
	// Reservoir-sample one capturer per target among its pickers, so each
	// contender wins with equal probability. seen[target] counts the pickers
	// observed so far; the buffer is matcher-owned scratch reused across
	// rounds (allocating it per call once dominated the matching cost).
	seen := m.seen[:n]
	for t := range seen {
		seen[t] = 0
	}
	for s := 0; s < n; s++ {
		target := picks[s]
		if target < 0 {
			continue
		}
		seen[target]++
		//hh:draws reservoir tie-break: one word per contender beyond the first; both engines share this exact code
		if seen[target] == 1 {
			m.captures = append(m.captures, target) //hh:allocok within Reserve(n) capacity; at most n captures
			capturedBy[target] = int32(s)
		} else if src.Uint64n(uint64(seen[target])) == 0 {
			capturedBy[target] = int32(s)
		}
	}
	for t := 0; t < n; t++ {
		if capturedBy[t] >= 0 {
			succeeded[capturedBy[t]] = true
		}
	}
}

// RendezvousMatcher is a second ablation model: the recruiting set is
// shuffled and scanned once; each still-unmatched active ant captures the
// nearest following unmatched ant in the shuffled order (wrapping around).
// This "speed dating" process has no random target draw at all, only the
// permutation, and produces near-perfect matchings — an upper bound on how
// efficient pairing could plausibly be.
type RendezvousMatcher struct {
	perm     []int32
	blocked  []bool // blocked[t] = captured or succeeded, the scan's skip test
	captures []int32
}

var (
	_ Matcher       = (*RendezvousMatcher)(nil)
	_ CaptureLister = (*RendezvousMatcher)(nil)
)

// Captures implements CaptureLister.
//
//hh:hotpath
func (m *RendezvousMatcher) Captures() []int32 { return m.captures }

// Reserve pre-sizes the scratch for pools of up to n slots.
//
//hh:coldpath grows only to a new maximum pool size; steady-state calls are no-ops
func (m *RendezvousMatcher) Reserve(n int) {
	if cap(m.perm) < n {
		m.perm = make([]int32, n)
		m.blocked = make([]bool, n)
		m.captures = make([]int32, 0, n)
	}
}

// Name implements Matcher.
func (m *RendezvousMatcher) Name() string { return "rendezvous" }

// Match implements Matcher.
//
//hh:hotpath
//hh:draws PermInto32(n) only; the rendezvous scan is draw-free
func (m *RendezvousMatcher) Match(n int, active []bool, src *rng.Source, capturedBy []int32, succeeded []bool) {
	m.captures = m.captures[:0]
	if n == 0 {
		return
	}
	capturedBy = capturedBy[:n]
	succeeded = succeeded[:n]
	active = active[:n]
	for t := range capturedBy {
		capturedBy[t] = -1
	}
	for t := range succeeded {
		succeeded[t] = false
	}
	m.Reserve(n)
	perm := m.perm[:n]
	src.PermInto32(perm)
	anyActive := false
	for t := 0; t < n; t++ {
		if active[t] {
			anyActive = true
			break
		}
	}
	if !anyActive {
		return // the scan draws nothing, so skipping it changes nothing
	}
	blocked := m.blocked[:n]
	for t := range blocked {
		blocked[t] = false
	}

	for i := 0; i < n; i++ {
		a := int(perm[i])
		if !active[a] || blocked[a] {
			continue
		}
		for j := 1; j < n; j++ {
			b := int(perm[(i+j)%n])
			if blocked[b] {
				continue
			}
			capturedBy[b] = int32(a)
			m.captures = append(m.captures, int32(b)) //hh:allocok within Reserve(n) capacity; at most n captures
			blocked[b] = true
			succeeded[a] = true
			blocked[a] = true
			break
		}
	}
}

// Matchers returns one instance of every matcher model, the paper's first,
// for ablation sweeps.
func Matchers() []Matcher {
	return []Matcher{
		&AlgorithmOneMatcher{},
		&SimultaneousMatcher{},
		&RendezvousMatcher{},
	}
}
