// Command hhbench regenerates the experiment tables of EXPERIMENTS.md: one
// experiment per lemma/theorem/extension claim of the paper (E1-E21).
//
// Examples:
//
//	hhbench -list
//	hhbench -exp E9
//	hhbench -exp all -scale full
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/gmrl/househunt/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hhbench:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments; split from main for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hhbench", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "all", "experiment id (E1..E21) or 'all'")
		scale = fs.String("scale", "small", "experiment sizing: small or full")
		list  = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	var sc experiment.Scale
	switch strings.ToLower(*scale) {
	case "small":
		sc = experiment.ScaleSmall
	case "full":
		sc = experiment.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q (want small or full)", *scale)
	}

	ids := experiment.IDs()
	if !strings.EqualFold(*exp, "all") {
		ids = []string{*exp}
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		rep, err := experiment.RunExperiment(id, sc)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Fprint(out, rep)
		fmt.Fprintf(out, "(elapsed %.1fs)\n\n", time.Since(start).Seconds())
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) reported a violated shape", failed)
	}
	return nil
}
