package stats

import (
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

func TestBinomialTailUpper(t *testing.T) {
	t.Parallel()
	// P[X >= 75] for X ~ Bin(100, 0.5) is tiny; the bound must reflect that.
	if got := BinomialTailUpper(100, 0.5, 75); got > 1e-4 {
		t.Fatalf("tail bound %v too loose", got)
	}
	if got := BinomialTailUpper(100, 0.5, 40); got != 1 {
		t.Fatalf("below-mean threshold should give trivial bound 1, got %v", got)
	}
	if got := BinomialTailUpper(100, 0.5, 0); got != 1 {
		t.Fatalf("k=0 should give 1, got %v", got)
	}
	if got := BinomialTailUpper(100, 0.5, 101); got != 0 {
		t.Fatalf("k>n should give 0, got %v", got)
	}
}

func TestBinomialTailLower(t *testing.T) {
	t.Parallel()
	if got := BinomialTailLower(100, 0.5, 25); got > 1e-4 {
		t.Fatalf("lower tail bound %v too loose", got)
	}
	if got := BinomialTailLower(100, 0.5, 60); got != 1 {
		t.Fatalf("above-mean threshold should give 1, got %v", got)
	}
	if got := BinomialTailLower(100, 0.5, -1); got != 0 {
		t.Fatalf("k<0 should give 0, got %v", got)
	}
	if got := BinomialTailLower(100, 0.5, 100); got != 1 {
		t.Fatalf("k=n should give 1, got %v", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	t.Parallel()
	lo, hi := WilsonInterval(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("Wilson interval [%v, %v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("Wilson interval [%v, %v] too wide for n=100", lo, hi)
	}
	lo, hi = WilsonInterval(0, 100)
	if lo != 0 || hi > 0.06 {
		t.Fatalf("Wilson interval for 0/100 = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100)
	if hi != 1 || lo < 0.94 {
		t.Fatalf("Wilson interval for 100/100 = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson interval with no trials = [%v, %v], want [0,1]", lo, hi)
	}
}

func TestBootstrapCI(t *testing.T) {
	t.Parallel()
	src := rng.New(55)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = src.NormFloat64() + 42
	}
	lo, hi, err := BootstrapCI(xs, 0.95, 500, src)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 42 || hi < 42 {
		t.Fatalf("bootstrap CI [%v, %v] misses true mean 42", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("bootstrap CI [%v, %v] too wide", lo, hi)
	}
	if _, _, err := BootstrapCI(nil, 0.95, 100, src); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, _, err := BootstrapCI(xs, 1.5, 100, src); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 2.5, 5, 7.5, 9.99, -3, 100} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under/over = %d/%d, want 1/1", h.Underflow, h.Overflow)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 8 {
		t.Fatalf("bin sum = %d, want 8 (clamped values must land in edge bins)", sum)
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v, want 1", got)
	}
	if out := h.Render(20); !strings.Contains(out, "#") {
		t.Fatalf("Render produced no bars:\n%s", out)
	}
}

func TestHistogramErrors(t *testing.T) {
	t.Parallel()
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("hi == lo accepted")
	}
}

func TestSparkline(t *testing.T) {
	t.Parallel()
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	out := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(out)) != 8 {
		t.Fatalf("sparkline length = %d, want 8", len([]rune(out)))
	}
	flat := Sparkline([]float64{3, 3, 3})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	tb := NewTable("E9: Simple scaling", "n", "k", "rounds", "success")
	tb.AddRow("256", "2", "38.2", "1.00")
	tb.AddRow("65536", "16", "912.4", "1.00")
	out := tb.String()
	if !strings.Contains(out, "E9: Simple scaling") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "rounds") || !strings.Contains(out, "912.4") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableAddRowf(t *testing.T) {
	t.Parallel()
	tb := NewTable("", "a", "b")
	tb.AddRowf("%d\t%.2f", 7, 3.14159)
	out := tb.String()
	if !strings.Contains(out, "7") || !strings.Contains(out, "3.14") {
		t.Fatalf("AddRowf row missing:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	t.Parallel()
	tb := &Table{}
	if out := tb.String(); out == "" {
		t.Fatal("empty table should still render newline-terminated title")
	}
}
