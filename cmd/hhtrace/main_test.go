package main

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "32", "-k", "2", "-good", "1", "-format", "csv", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "round,pop0,pop1,pop2") {
		t.Fatalf("csv header missing:\n%.80s", out.String())
	}
	if len(strings.Split(out.String(), "\n")) < 3 {
		t.Fatal("csv has no data rows")
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "32", "-k", "2", "-good", "1", "-format", "json", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"rounds\"") {
		t.Fatalf("json missing rounds:\n%.120s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-format", "xml"}, &out); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Fatal("zero colony accepted")
	}
	if err := run([]string{"-algo", "bogus"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunLiveStreamsSweep(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-live", "-reps", "4", "-n", "48", "-k", "2", "-good", "1", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if lines[0] != "rep,round,pop0,pop1,pop2,committed0,committed1,committed2" {
		t.Fatalf("live header = %q", lines[0])
	}
	if len(lines) < 5 {
		t.Fatalf("live sweep emitted %d rows, want at least one per replicate", len(lines)-1)
	}
	// Every replicate must appear, and every row must have the header's arity.
	seen := map[string]bool{}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 8 {
			t.Fatalf("row %q has %d fields, want 8", line, len(fields))
		}
		seen[fields[0]] = true
	}
	for _, rep := range []string{"0", "1", "2", "3"} {
		if !seen[rep] {
			t.Errorf("no streamed rows for replicate %s", rep)
		}
	}
}

func TestRunLiveIsDeterministic(t *testing.T) {
	runOnce := func() string {
		var out bytes.Buffer
		if err := run([]string{"-live", "-reps", "3", "-n", "32", "-k", "2", "-good", "2", "-algo", "optimal", "-seed", "9"}, &out); err != nil {
			t.Fatal(err)
		}
		// Lane scheduling interleaves replicates nondeterministically, so
		// compare the sorted row multiset, not the arrival order.
		lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatal("same seed produced different streamed records")
	}
}

func TestRunLiveRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-live", "-format", "json"}, &out); err == nil {
		t.Fatal("live json accepted")
	}
	if err := run([]string{"-live", "-reps", "0"}, &out); err == nil {
		t.Fatal("zero reps accepted")
	}
	if err := run([]string{"-live", "-algo", "bogus"}, &out); err == nil {
		t.Fatal("unknown live algorithm accepted")
	}
}
