package algo

import (
	"fmt"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
)

// AdaptiveAnt implements the §6 "Improved running time" extension. The paper
// observes that Algorithm 3 pays O(k) because early recruitment probabilities
// sit at count/n ≈ 1/k, and suggests boosting the rate using the round number
// as a proxy for how many competing nests remain.
//
// This implementation uses a saturating boost: the ant recruits with
// probability
//
//	b(r) = count / (count + A(r)),   A(r) = max(n·2^(−⌊t/Tau⌋), n/FloorDiv)
//
// where t counts the ant's recruit phases so far. Early on A ≈ n reproduces
// Algorithm 3's count/n. Every Tau phases the virtual rival A halves, lifting
// the probability toward a constant while keeping it strictly increasing in
// count — the property the paper's Lemma 5.7 argument needs to amplify
// population gaps. The floor n/FloorDiv stops the boost before the
// probability saturates at 1 for every nest, which would erase the
// differential and stall the final duel (a pure Polya urn with equal rates
// has zero drift).
//
// The schedule uses only quantities the paper grants the ants: the round
// number and n.
type AdaptiveAnt struct {
	n      int
	src    *rng.Source
	phase  simplePhase
	active bool

	nest    sim.NestID
	count   int
	quality float64

	recruitPhases int
	tau           int
	floorDiv      float64
}

var _ sim.Agent = (*AdaptiveAnt)(nil)

// NewAdaptiveAnt builds one adaptive ant. tau is the boost-doubling period in
// recruit phases (default 2 if <= 0); floorDiv caps the boost at A = n/floorDiv
// (default 4 if <= 0). The defaults were tuned empirically (see EXPERIMENTS.md
// E10): they make convergence time nearly flat in k at the cost of a ramp-up
// penalty for small k, with the crossover against Algorithm 3 near k ≈ 16.
func NewAdaptiveAnt(n int, src *rng.Source, tau int, floorDiv float64) *AdaptiveAnt {
	if tau <= 0 {
		tau = 2
	}
	if floorDiv <= 0 {
		floorDiv = 4
	}
	return &AdaptiveAnt{n: n, src: src, phase: simpleSearch, active: true, tau: tau, floorDiv: floorDiv}
}

// recruitProbability computes b(r) for the current registers. It delegates to
// the sim package's shared formula — the semantic definition of the batch
// engine's EmitRecruitAdaptive opcode — so the scalar and compiled executions
// agree float for float by construction.
func (a *AdaptiveAnt) recruitProbability() float64 {
	return sim.AdaptiveRecruitProbability(a.n, a.count, a.recruitPhases, a.tau, a.floorDiv)
}

// Act implements sim.Agent.
func (a *AdaptiveAnt) Act(int) sim.Action {
	switch a.phase {
	case simpleSearch:
		return sim.Search()
	case simpleRecruit:
		b := false
		if a.active {
			b = a.src.Bernoulli(a.recruitProbability())
		}
		a.recruitPhases++
		return sim.Recruit(b, a.nest)
	default:
		return sim.Goto(a.nest)
	}
}

// Observe implements sim.Agent.
func (a *AdaptiveAnt) Observe(_ int, out sim.Outcome) {
	switch a.phase {
	case simpleSearch:
		a.nest = out.Nest
		a.count = out.Count
		a.quality = out.Quality
		if a.quality == 0 {
			a.active = false
		}
		a.phase = simpleRecruit
	case simpleRecruit:
		if out.Nest != a.nest {
			a.nest = out.Nest
			a.active = true
		}
		a.phase = simpleAssess
	case simpleAssess:
		a.count = out.Count
		a.phase = simpleRecruit
	}
}

// Committed implements the core.Committer contract.
func (a *AdaptiveAnt) Committed() (sim.NestID, bool) {
	return a.nest, a.nest != sim.Home
}

// Adaptive is the core.Algorithm builder for the §6 boosted-rate extension.
// Zero values select the documented defaults.
type Adaptive struct {
	Tau      int
	FloorDiv float64
}

// Name implements core.Algorithm.
func (Adaptive) Name() string { return "adaptive" }

// Build implements core.Algorithm.
func (ad Adaptive) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algo: adaptive needs a positive colony, got %d", n)
	}
	if env.K() == 0 {
		return nil, fmt.Errorf("algo: adaptive needs a non-empty environment")
	}
	agents := make([]sim.Agent, n)
	for i := range agents {
		agents[i] = NewAdaptiveAnt(n, src.Split(uint64(i)), ad.Tau, ad.FloorDiv)
	}
	return agents, nil
}
