package experiment

import (
	"reflect"
	"testing"

	"github.com/gmrl/househunt/internal/algo"
	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/workload"
)

// TestMeasureConvergenceBatchMatchesScalar pins the config switch: a
// measurement taken on the batch fast path must aggregate to exactly the same
// ConvergencePoint as the scalar replicate loop, because per-replicate
// executions are bit-identical.
func TestMeasureConvergenceBatchMatchesScalar(t *testing.T) {
	env, err := workload.Binary(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.RunConfig{N: 96, Env: env, MaxRounds: 4000}
	const reps = 24

	if !BatchEngineEnabled() {
		t.Fatal("batch engine should be enabled by default")
	}
	batched, err := MeasureConvergence(algo.Simple{}, cfg, reps, "batch-equiv")
	if err != nil {
		t.Fatal(err)
	}

	SetBatchEngine(false)
	defer SetBatchEngine(true)
	scalar, err := MeasureConvergence(algo.Simple{}, cfg, reps, "batch-equiv")
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(batched, scalar) {
		t.Fatalf("batch and scalar measurements diverge:\nbatch  %+v\nscalar %+v", batched, scalar)
	}
	if batched.Solved == 0 {
		t.Fatal("measurement solved no replicates; the equivalence check is vacuous")
	}
}

// TestMeasureConvergenceBatchMatchesScalarOptimal is the Algorithm 2
// counterpart: Optimal now compiles to the batch engine's general path, and a
// measurement taken on it must aggregate identically to the scalar loop for
// both Case-3 variants.
func TestMeasureConvergenceBatchMatchesScalarOptimal(t *testing.T) {
	env, err := workload.Binary(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.RunConfig{N: 96, Env: env, MaxRounds: 4000}
	const reps = 24

	for _, variant := range []algo.Optimal{{}, {Literal: true}} {
		SetBatchEngine(true)
		if _, ok := core.CompileForBatch(variant, cfg); !ok {
			t.Fatalf("%s: expected batch eligibility", variant.Name())
		}
		batched, err := MeasureConvergence(variant, cfg, reps, "batch-equiv-opt")
		if err != nil {
			t.Fatal(err)
		}

		SetBatchEngine(false)
		scalar, err := MeasureConvergence(variant, cfg, reps, "batch-equiv-opt")
		SetBatchEngine(true)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(batched, scalar) {
			t.Fatalf("%s: batch and scalar measurements diverge:\nbatch  %+v\nscalar %+v",
				variant.Name(), batched, scalar)
		}
		if variant == (algo.Optimal{}) && batched.Solved == 0 {
			t.Fatal("measurement solved no replicates; the equivalence check is vacuous")
		}
	}
}

// TestMeasureConvergenceScalarFallback exercises the fallback branch with an
// algorithm that has no compiled form; the batch switch must not change its
// results either (it never engages).
func TestMeasureConvergenceScalarFallback(t *testing.T) {
	env, err := workload.Binary(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.RunConfig{N: 64, Env: env}
	if _, ok := core.CompileForBatch(algo.Adaptive{}, cfg); ok {
		t.Fatal("Adaptive should have no compiled form")
	}
	pt, err := MeasureConvergence(algo.Adaptive{}, cfg, 8, "batch-fallback")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Reps != 8 || pt.Solved == 0 {
		t.Fatalf("fallback measurement implausible: %+v", pt)
	}
}
