package rng

import (
	"math"
	"testing"
)

// oraclePop is the float path the kernels must reproduce bit for bit.
func oraclePop(c, n int) Threshold { return NewThreshold(float64(c) / float64(n)) }

func oracleMul(q float64, c, n int) Threshold {
	return NewThreshold(q * float64(c) / float64(n))
}

// TestRecipThresholdExhaustiveSmall pins Recip.Threshold against the float
// oracle for every count of every small divisor, including the out-of-range
// counts the noisy estimators can report.
func TestRecipThresholdExhaustiveSmall(t *testing.T) {
	for n := 1; n <= 512; n++ {
		r := NewRecip(n)
		for c := -2; c <= n+2; c++ {
			if got, want := r.Threshold(c), oraclePop(c, n); got != want {
				t.Fatalf("Threshold(%d)/%d = %d, float oracle %d", c, n, got, want)
			}
		}
	}
}

// TestRecipThresholdLargeDivisors sweeps boundary and pseudorandom counts for
// divisors straddling the old table ceiling up to the 2⁵³ domain bound.
func TestRecipThresholdLargeDivisors(t *testing.T) {
	divisors := []int{
		1<<16 - 1, 1 << 16, 1<<16 + 1, 1e6, 1e6 + 7, 1<<20 + 3,
		1<<31 - 1, 1 << 31, 1<<40 + 9, 1<<52 + 1, 1<<53 - 1, 1 << 53,
	}
	src := New(0xF1E2)
	for _, n := range divisors {
		r := NewRecip(n)
		cs := []int{0, 1, 2, 3, n / 3, n / 2, n - 2, n - 1, n, n + 1}
		for i := 0; i < 4000; i++ {
			cs = append(cs, int(src.Uint64n(uint64(n)+1)))
		}
		for _, c := range cs {
			if got, want := r.Threshold(c), oraclePop(c, n); got != want {
				t.Fatalf("Threshold(%d)/%d = %d, float oracle %d", c, n, got, want)
			}
		}
	}
}

// TestRecipThresholdMul pins the quality-weighted kernel against the scalar
// expression q·float64(c)/float64(n) over a grid of qualities — environment
// values, exact binary fractions, near-1 and near-0 extremes, and the IEEE
// specials that must take the oracle fallback — crossed with boundary and
// random counts for small and large divisors.
func TestRecipThresholdMul(t *testing.T) {
	qs := []float64{
		0, 1, 0.5, 0.25, 0.75, 0.1, 0.3, 0.7, 0.9, 1.0 / 3.0,
		1 - 1e-16, 1e-9, 1e-300, 5e-324, 2.5, 7.0,
		math.Inf(1), math.Inf(-1), math.NaN(), -0.5, math.Copysign(0, -1),
		math.Nextafter(1, 0), math.Nextafter(0, 1) * 1e10,
	}
	divisors := []int{1, 2, 3, 7, 64, 100, 65535, 65536, 65537, 1e6, 1<<31 - 1, 1 << 53}
	src := New(0xBEEF)
	for _, n := range divisors {
		r := NewRecip(n)
		cs := []int{-3, -1, 0, 1, 2, n / 2, n - 1, n, n + 1, 3 * n}
		for i := 0; i < 600; i++ {
			cs = append(cs, int(src.Uint64n(uint64(n)+1)))
		}
		for _, q := range qs {
			for _, c := range cs {
				got, want := r.ThresholdMul(q, c), oracleMul(q, c, n)
				if got != want {
					t.Fatalf("ThresholdMul(%v, %d)/%d = %d, float oracle %d", q, c, n, got, want)
				}
			}
		}
	}
}

// TestRecipThresholdMulRandomQ drives the product-rounding path with fully
// random mantissas: random q ∈ (0, 1) crossed with random counts must agree
// with the oracle on every divisor tried.
func TestRecipThresholdMulRandomQ(t *testing.T) {
	src := New(0xABCD01)
	divisors := []int{3, 1000, 65537, 1e6, 1<<31 - 1}
	for _, n := range divisors {
		r := NewRecip(n)
		for i := 0; i < 5000; i++ {
			q := src.Float64()
			c := int(src.Uint64n(uint64(n) + 1))
			got, want := r.ThresholdMul(q, c), oracleMul(q, c, n)
			if got != want {
				t.Fatalf("ThresholdMul(%v, %d)/%d = %d, float oracle %d", q, c, n, got, want)
			}
		}
	}
}

// TestRecipDrawEquivalence closes the loop through the stream: a Recip-driven
// draw must consume and decide exactly like Source.Bernoulli on the scalar
// float probability.
func TestRecipDrawEquivalence(t *testing.T) {
	n := 1<<16 + 1
	r := NewRecip(n)
	var a, b Source
	a.Reseed(42)
	b.Reseed(42)
	for i := 0; i < 20000; i++ {
		c := i % (n + 2)
		p := float64(c) / float64(n)
		if got, want := r.Threshold(c).Draw(&a), b.Bernoulli(p); got != want {
			t.Fatalf("draw %d (c=%d): threshold %v, bernoulli %v", i, c, got, want)
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("streams desynchronized after equivalent draws")
	}
}

// TestNewRecipDomain pins the constructor's domain guard.
func TestNewRecipDomain(t *testing.T) {
	for _, n := range []int{0, -1, MaxRecipN + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewRecip(%d) did not panic", n)
				}
			}()
			NewRecip(n)
		}()
	}
	if got := NewRecip(MaxRecipN).N(); got != MaxRecipN {
		t.Fatalf("N() = %d", got)
	}
}
