package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/trace"
)

// oracleAnt is a deliberately simple test colony member: it searches every
// round until it personally stumbles on the target nest, then commits and
// revisits it forever. Convergence therefore needs every ant to find the
// target by independent search — a coupon-collector process that terminates
// quickly for small test colonies.
type oracleAnt struct {
	target    sim.NestID
	committed bool
	done      bool
}

func (o *oracleAnt) Act(round int) sim.Action {
	if o.committed {
		return sim.Goto(o.target)
	}
	return sim.Search()
}

func (o *oracleAnt) Observe(_ int, out sim.Outcome) {
	if !o.committed && out.Nest == o.target {
		o.committed = true
		o.done = true
	}
}

func (o *oracleAnt) Committed() (sim.NestID, bool) {
	if !o.committed {
		return sim.Home, false
	}
	return o.target, true
}

func (o *oracleAnt) Decided() bool { return o.done }

// oracleAlgorithm builds oracleAnts homing on the first good nest.
type oracleAlgorithm struct{}

func (oracleAlgorithm) Name() string { return "oracle" }

func (oracleAlgorithm) Build(n int, env sim.Environment, _ *rng.Source) ([]sim.Agent, error) {
	good := env.GoodNests()
	if len(good) == 0 {
		return nil, errors.New("no good nest")
	}
	agents := make([]sim.Agent, n)
	for i := range agents {
		agents[i] = &oracleAnt{target: good[0]}
	}
	return agents, nil
}

// stubCommitter is a census test double.
type stubCommitter struct {
	nest    sim.NestID
	ok      bool
	faulty  bool
	decided bool
}

func (s *stubCommitter) Act(int) sim.Action       { return sim.Search() }
func (s *stubCommitter) Observe(int, sim.Outcome) {}
func (s *stubCommitter) Committed() (sim.NestID, bool) {
	return s.nest, s.ok
}
func (s *stubCommitter) Faulty() bool { return s.faulty }

// decidedStub adds the Decided interface on top of stubCommitter.
type decidedStub struct{ stubCommitter }

func (d *decidedStub) Decided() bool { return d.decided }

func TestTakeCensus(t *testing.T) {
	t.Parallel()
	agents := []sim.Agent{
		&stubCommitter{nest: 1, ok: true},
		&stubCommitter{nest: 1, ok: true},
		&stubCommitter{nest: 2, ok: true},
		&stubCommitter{ok: false},
		&stubCommitter{nest: 1, ok: true, faulty: true},
	}
	c := TakeCensus(agents, 3)
	if c.Total != 4 || c.Faulty != 1 {
		t.Fatalf("census totals: %+v", c)
	}
	if c.Committed[0] != 1 || c.Committed[1] != 2 || c.Committed[2] != 1 || c.Committed[3] != 0 {
		t.Fatalf("census commitments: %v", c.Committed)
	}
	if c.Decided != -1 {
		t.Fatalf("no decider agents but Decided = %d", c.Decided)
	}
	if _, ok := c.Winner(); ok {
		t.Fatal("split census reported a winner")
	}
}

func TestTakeCensusOutOfRangeCommitment(t *testing.T) {
	t.Parallel()
	agents := []sim.Agent{&stubCommitter{nest: 99, ok: true}}
	c := TakeCensus(agents, 3)
	if c.Committed[0] != 1 {
		t.Fatalf("out-of-range commitment should count as uncommitted: %v", c.Committed)
	}
}

func TestCensusWinnerAndConverged(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 1})
	unanimousGood := []sim.Agent{
		&stubCommitter{nest: 2, ok: true},
		&stubCommitter{nest: 2, ok: true},
	}
	c := TakeCensus(unanimousGood, 2)
	if w, ok := c.Winner(); !ok || w != 2 {
		t.Fatalf("Winner = %v %v", w, ok)
	}
	if w, ok := c.Converged(env); !ok || w != 2 {
		t.Fatalf("Converged = %v %v", w, ok)
	}
	// Unanimity on a BAD nest must not count as solving the problem.
	unanimousBad := []sim.Agent{&stubCommitter{nest: 1, ok: true}}
	c = TakeCensus(unanimousBad, 2)
	if _, ok := c.Converged(env); ok {
		t.Fatal("converged on a bad nest")
	}
}

func TestCensusDecidedGate(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	half := &decidedStub{stubCommitter{nest: 1, ok: true}}
	full := &decidedStub{stubCommitter{nest: 1, ok: true}}
	full.decided = true
	c := TakeCensus([]sim.Agent{half, full}, 1)
	if c.Decided != 1 {
		t.Fatalf("Decided = %d, want 1", c.Decided)
	}
	if _, ok := c.Converged(env); ok {
		t.Fatal("converged with undecided ants")
	}
	half.decided = true
	c = TakeCensus([]sim.Agent{half, full}, 1)
	if _, ok := c.Converged(env); !ok {
		t.Fatal("did not converge with all decided")
	}
}

func TestCensusEmptyColony(t *testing.T) {
	t.Parallel()
	c := TakeCensus(nil, 2)
	if _, ok := c.Winner(); ok {
		t.Fatal("empty colony has a winner")
	}
}

func TestRunOracleConverges(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 1, 0})
	res, err := Run(oracleAlgorithm{}, RunConfig{N: 40, Env: env, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("oracle did not converge: %+v", res)
	}
	if res.Winner != 2 || res.WinnerQuality != 1 {
		t.Fatalf("winner = %d (q=%v), want nest 2", res.Winner, res.WinnerQuality)
	}
	if res.Rounds <= 0 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.Algorithm != "oracle" {
		t.Fatalf("algorithm name = %q", res.Algorithm)
	}
	if got := res.FinalCensus.Committed[2]; got != 40 {
		t.Fatalf("final census = %v", res.FinalCensus.Committed)
	}
}

func TestRunStabilityWindow(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	base, err := Run(oracleAlgorithm{}, RunConfig{N: 20, Env: env, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := Run(oracleAlgorithm{}, RunConfig{N: 20, Env: env, Seed: 7, StabilityWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !windowed.Solved {
		t.Fatal("windowed run did not converge")
	}
	if windowed.Rounds != base.Rounds+4 {
		t.Fatalf("window of 5 should add 4 rounds: base %d, windowed %d", base.Rounds, windowed.Rounds)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 0, 0, 0, 0, 0, 0})
	// One round cannot possibly converge a 30-ant oracle colony on k=8.
	res, err := Run(oracleAlgorithm{}, RunConfig{N: 30, Env: env, Seed: 1, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("impossible convergence reported")
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := Run(nil, RunConfig{N: 1, Env: env}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	if _, err := Run(oracleAlgorithm{}, RunConfig{N: 0, Env: env}); err == nil {
		t.Fatal("zero colony accepted")
	}
	if _, err := Run(oracleAlgorithm{}, RunConfig{N: 5}); err == nil {
		t.Fatal("empty environment accepted")
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 1})
	a, err := Run(oracleAlgorithm{}, RunConfig{N: 25, Env: env, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(oracleAlgorithm{}, RunConfig{N: 25, Env: env, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Winner != b.Winner {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunConcurrentMode(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 1})
	seq, err := Run(oracleAlgorithm{}, RunConfig{N: 25, Env: env, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	con, err := Run(oracleAlgorithm{}, RunConfig{N: 25, Env: env, Seed: 5, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds != con.Rounds || seq.Winner != con.Winner {
		t.Fatalf("modes diverged: seq %+v, con %+v", seq, con)
	}
}

func TestRunWithFaultyExclusion(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	wrap := WrapFunc(func(agents []sim.Agent) ([]sim.Agent, error) {
		// Replace the last ant with a permanently faulty stub: it never
		// commits, but being faulty it must not block convergence.
		agents[len(agents)-1] = &stubCommitter{faulty: true}
		return agents, nil
	})
	res, err := Run(oracleAlgorithm{}, RunConfig{N: 10, Env: env, Seed: 3, Wrap: wrap})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("faulty ant blocked convergence")
	}
	if res.FinalCensus.Faulty != 1 || res.FinalCensus.Total != 9 {
		t.Fatalf("census = %+v", res.FinalCensus)
	}
}

func TestRunWrapErrors(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	boom := WrapFunc(func([]sim.Agent) ([]sim.Agent, error) { return nil, errors.New("boom") })
	if _, err := Run(oracleAlgorithm{}, RunConfig{N: 4, Env: env, Wrap: boom}); err == nil {
		t.Fatal("wrapper error swallowed")
	}
	shrink := WrapFunc(func(a []sim.Agent) ([]sim.Agent, error) { return a[:1], nil })
	if _, err := Run(oracleAlgorithm{}, RunConfig{N: 4, Env: env, Wrap: shrink}); err == nil {
		t.Fatal("colony-size change accepted")
	}
}

func TestRunTraced(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 1})
	tr := trace.New(2)
	res, err := RunTraced(oracleAlgorithm{}, RunConfig{N: 20, Env: env, Seed: 8, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("traced run did not converge")
	}
	if tr.Len() != res.Rounds {
		t.Fatalf("trace has %d rounds, result says %d", tr.Len(), res.Rounds)
	}
	// The last census must show all 20 ants committed to nest 2.
	last := tr.Rounds()[tr.Len()-1]
	if last.Commitments == nil || last.Commitments[2] != 20 {
		t.Fatalf("final trace census = %v", last.Commitments)
	}
	if _, err := RunTraced(oracleAlgorithm{}, RunConfig{N: 5, Env: env}); err == nil {
		t.Fatal("RunTraced without trace accepted")
	}
}

func TestLocationConverged(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 1})
	algoAgents, err := oracleAlgorithm{}.Build(15, env, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(env, algoAgents, sim.WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	// Run until every oracle ant has committed and is physically at nest 2.
	for r := 0; r < 500; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if w, ok := LocationConverged(e, algoAgents); ok {
			if w != 2 {
				t.Fatalf("location winner %d, want 2", w)
			}
			return
		}
	}
	t.Fatal("location convergence never reached")
}

func TestRegistry(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	if err := r.Register(oracleAlgorithm{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(oracleAlgorithm{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(nil); err == nil {
		t.Fatal("nil registration accepted")
	}
	a, err := r.Lookup("oracle")
	if err != nil || a.Name() != "oracle" {
		t.Fatalf("Lookup: %v %v", a, err)
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Fatal("unknown lookup succeeded")
	}
	if !strings.Contains(strings.Join(r.Names(), ","), "oracle") {
		t.Fatalf("Names = %v", r.Names())
	}
}

func TestRegistryMustRegisterPanics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.MustRegister(oracleAlgorithm{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MustRegister did not panic")
		}
	}()
	r.MustRegister(oracleAlgorithm{})
}

// failingAlgorithm always fails to build, to exercise the build-error paths.
type failingAlgorithm struct{}

func (failingAlgorithm) Name() string { return "failing" }
func (failingAlgorithm) Build(int, sim.Environment, *rng.Source) ([]sim.Agent, error) {
	return nil, errors.New("synthetic build failure")
}

func TestRunWrapsBuildErrors(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	_, err := Run(failingAlgorithm{}, RunConfig{N: 4, Env: env})
	if err == nil || !strings.Contains(err.Error(), "failing") {
		t.Fatalf("build error not wrapped with algorithm name: %v", err)
	}
	tr := trace.New(1)
	_, err = RunTraced(failingAlgorithm{}, RunConfig{N: 4, Env: env, Trace: tr})
	if err == nil || !strings.Contains(err.Error(), "failing") {
		t.Fatalf("RunTraced build error not wrapped: %v", err)
	}
}

func TestRunTracedValidationAndWrap(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	tr := trace.New(1)
	if _, err := RunTraced(nil, RunConfig{N: 4, Env: env, Trace: tr}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	if _, err := RunTraced(oracleAlgorithm{}, RunConfig{N: 0, Env: env, Trace: tr}); err == nil {
		t.Fatal("zero colony accepted")
	}
	boom := WrapFunc(func([]sim.Agent) ([]sim.Agent, error) { return nil, errors.New("boom") })
	if _, err := RunTraced(oracleAlgorithm{}, RunConfig{N: 4, Env: env, Trace: tr, Wrap: boom}); err == nil {
		t.Fatal("wrap error swallowed in RunTraced")
	}
	// A successful wrapped, matcher-overridden traced run.
	tr2 := trace.New(1)
	passthrough := WrapFunc(func(a []sim.Agent) ([]sim.Agent, error) { return a, nil })
	res, err := RunTraced(oracleAlgorithm{}, RunConfig{
		N: 10, Env: env, Trace: tr2, Seed: 4, Wrap: passthrough,
		NewMatcher: func() sim.Matcher { return &sim.SimultaneousMatcher{} },
	})
	if err != nil || !res.Solved {
		t.Fatalf("wrapped traced run: %v %+v", err, res)
	}
}

func TestRunTracedBudgetExhaustion(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 0, 0, 0, 0, 0, 0})
	tr := trace.New(8)
	res, err := RunTraced(oracleAlgorithm{}, RunConfig{N: 30, Env: env, Seed: 1, MaxRounds: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved || res.Rounds != 1 || tr.Len() != 1 {
		t.Fatalf("budgeted traced run: %+v, trace %d rounds", res, tr.Len())
	}
}

func TestLocationConvergedEdgeCases(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{0, 1})
	agents, err := oracleAlgorithm{}.Build(5, env, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(env, agents, sim.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	// Before any round everyone is at home: not converged.
	if _, ok := LocationConverged(e, agents); ok {
		t.Fatal("converged while everyone is at home")
	}
	// Mismatched agents slice: refuse.
	if _, ok := LocationConverged(e, agents[:2]); ok {
		t.Fatal("converged with mismatched agent slice")
	}
	// One step: ants scattered over nests 1 and 2: not converged (and nest 1
	// is bad even if unanimous).
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if _, ok := LocationConverged(e, agents); ok {
		t.Fatal("converged while scattered")
	}
}

func TestRunTracedStabilityWindow(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	tr := trace.New(1)
	res, err := RunTraced(oracleAlgorithm{}, RunConfig{
		N: 12, Env: env, Seed: 9, Trace: tr, StabilityWindow: 4,
	})
	if err != nil || !res.Solved {
		t.Fatalf("windowed traced run: %v %+v", err, res)
	}
	if tr.Len() != res.Rounds {
		t.Fatalf("trace %d rounds vs result %d", tr.Len(), res.Rounds)
	}
}
