package algo

import (
	"testing"

	"github.com/gmrl/househunt/internal/core"
	"github.com/gmrl/househunt/internal/nest"
	"github.com/gmrl/househunt/internal/sim"
)

func TestQuorumConverges(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	for seed := uint64(1); seed <= 8; seed++ {
		res := runAlgo(t, Quorum{}, 200, env, seed, 0)
		if !res.Solved {
			t.Fatalf("seed %d: quorum colony unsolved", seed)
		}
		if !env.Good(res.Winner) {
			t.Fatalf("seed %d: quorum picked bad nest %d", seed, res.Winner)
		}
		// Algorithm's Decided == transporting: everyone must be moving.
		if res.FinalCensus.Decided != res.FinalCensus.Total {
			t.Fatalf("seed %d: %d/%d ants transporting at convergence",
				seed, res.FinalCensus.Decided, res.FinalCensus.Total)
		}
	}
}

func TestQuorumTransportSpeedsFinish(t *testing.T) {
	t.Parallel()
	// With carry=3 transports, the post-quorum phase should finish faster
	// than with carry=1 (pure tandem runs) on average.
	env := sim.MustEnvironment([]float64{1, 1})
	const n, reps = 300, 8
	var fast, slow int
	for seed := uint64(1); seed <= reps; seed++ {
		withTransport := runAlgo(t, Quorum{Carry: 3}, n, env, seed, 0)
		tandemOnly := runAlgo(t, Quorum{Carry: 1}, n, env, seed, 0)
		if !withTransport.Solved || !tandemOnly.Solved {
			t.Fatalf("seed %d: transport=%v tandem=%v", seed, withTransport.Solved, tandemOnly.Solved)
		}
		fast += withTransport.Rounds
		slow += tandemOnly.Rounds
	}
	if fast >= slow {
		t.Fatalf("transports (%d total rounds) not faster than tandem-only (%d)", fast, slow)
	}
}

func TestQuorumAntPromotion(t *testing.T) {
	t.Parallel()
	a := NewQuorumAnt(100, testSrc(1), 2.0, 3, 0, nil)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 1, Count: 5, Quality: 1})
	// Self-calibrated threshold: 2.0 × 5 = 10 ants.
	if a.Transporting() {
		t.Fatal("transporting below quorum")
	}
	if a.Decided() {
		t.Fatal("decided below quorum")
	}
	a.Act(2)
	a.Observe(2, sim.Outcome{Nest: 1})
	a.Act(3)
	a.Observe(3, sim.Outcome{Nest: 1, Count: 9}) // below 10: no quorum yet
	if a.Transporting() {
		t.Fatal("transporting below the calibrated threshold")
	}
	a.Act(4)
	a.Observe(4, sim.Outcome{Nest: 1})
	a.Act(5)
	a.Observe(5, sim.Outcome{Nest: 1, Count: 12}) // quorum reached at assess
	if !a.Transporting() || !a.Decided() {
		t.Fatal("quorum at assess did not promote to transport")
	}
	act := a.Act(6)
	if act.Kind != sim.ActionRecruit || !act.Active || act.Carry != 3 {
		t.Fatalf("transporting act = %+v, want transport(1, carry 3)", act)
	}
}

func TestQuorumPassiveNeverTransportsAlone(t *testing.T) {
	t.Parallel()
	// An ant on a bad nest stays passive; even a crowded bad nest must not
	// trigger transport (only canvassers promote).
	a := NewQuorumAnt(100, testSrc(2), 1.5, 3, 0, nil)
	a.Act(1)
	a.Observe(1, sim.Outcome{Nest: 2, Count: 50, Quality: 0})
	a.Act(2)
	a.Observe(2, sim.Outcome{Nest: 2})
	a.Act(3)
	a.Observe(3, sim.Outcome{Nest: 2, Count: 90}) // above threshold but passive
	if a.Transporting() {
		t.Fatal("passive ant transporting")
	}
	act := a.Act(2)
	if act.Active {
		t.Fatalf("passive quorum ant recruited actively: %+v", act)
	}
}

func TestQuorumNoisyAssessmentStillSolves(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	a := Quorum{Multiplier: 2.0, Assessor: nest.FlipAssessor{P: 0.1}}
	solved := 0
	const reps = 8
	for seed := uint64(1); seed <= reps; seed++ {
		res := runAlgo(t, a, 200, env, seed, 0)
		if res.Solved && env.Good(res.Winner) {
			solved++
		}
	}
	if solved < reps/2 {
		t.Fatalf("noisy quorum solved only %d/%d", solved, reps)
	}
}

func TestQuorumBuilderValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := (Quorum{}).Build(0, env, testSrc(1)); err == nil {
		t.Fatal("zero colony accepted")
	}
	if _, err := (Quorum{}).Build(5, sim.Environment{}, testSrc(1)); err == nil {
		t.Fatal("empty environment accepted")
	}
	if _, err := (Quorum{Multiplier: 0.8}).Build(5, env, testSrc(1)); err == nil {
		t.Fatal("multiplier <= 1 accepted")
	}
	if (Quorum{}).Name() == (Quorum{Assessor: nest.FlipAssessor{P: 0.1}}).Name() {
		t.Fatal("assessor not reflected in name")
	}
}

func TestApproxNZeroDeltaMatchesSimple(t *testing.T) {
	t.Parallel()
	// δ = 0 must reproduce Algorithm 3 exactly, draw for draw.
	env := sim.MustEnvironment([]float64{1, 0, 1})
	const n = 96
	for seed := uint64(1); seed <= 3; seed++ {
		plain, err := core.Run(Simple{}, core.RunConfig{N: n, Env: env, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := core.Run(ApproxN{}, core.RunConfig{N: n, Env: env, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Rounds != approx.Rounds || plain.Winner != approx.Winner {
			t.Fatalf("seed %d: δ=0 diverged from simple: %+v vs %+v", seed, plain, approx)
		}
	}
}

func TestApproxNToleratesLargeError(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0, 1, 0})
	a := ApproxN{Delta: 0.5}
	solved := 0
	const reps = 8
	for seed := uint64(1); seed <= reps; seed++ {
		res := runAlgo(t, a, 200, env, seed, 0)
		if res.Solved && env.Good(res.Winner) {
			solved++
		}
	}
	if solved < reps-1 {
		t.Fatalf("solved only %d/%d with ±50%% error in n", solved, reps)
	}
}

func TestApproxNBuilderValidation(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1})
	if _, err := (ApproxN{Delta: -0.1}).Build(5, env, testSrc(1)); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := (ApproxN{Delta: 1}).Build(5, env, testSrc(1)); err == nil {
		t.Fatal("delta >= 1 accepted")
	}
	if _, err := (ApproxN{}).Build(0, env, testSrc(1)); err == nil {
		t.Fatal("zero colony accepted")
	}
	if _, err := NewApproxNAnt(0, testSrc(1)); err == nil {
		t.Fatal("zero estimate accepted")
	}
}
