package hotpathalloc_test

import (
	"testing"

	"github.com/gmrl/househunt/internal/lint/analysistest"
	"github.com/gmrl/househunt/internal/lint/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "hafix")
}
