// Faulttolerance demonstrates the paper's §6 robustness claims: Algorithm 3
// keeps working when part of the colony crashes mid-emigration and when
// Byzantine ants actively lure nestmates toward a bad site.
//
// The example sweeps the fault fraction and prints how the surviving colony
// fares: whether the correct ants still reach a good-nest supermajority and
// how much the faults slow them down.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"github.com/gmrl/househunt"
)

func main() {
	const colony = 300

	fmt.Println("crash faults: a fraction of ants dies at a random round early in the emigration")
	fmt.Printf("%8s  %8s  %8s  %s\n", "fraction", "solved", "rounds", "note")
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		res, err := househunt.Run(
			househunt.WithColonySize(colony),
			househunt.WithBinaryNests(4, 2),
			househunt.WithAlgorithm(househunt.AlgorithmSimple),
			househunt.WithSeed(11),
			househunt.WithCrashFaults(frac, 40),
		)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if res.FaultyAnts > 0 {
			note = fmt.Sprintf("%d ants lost; survivors still agree", res.FaultyAnts)
		}
		fmt.Printf("%8.2f  %8v  %8d  %s\n", frac, res.Solved, res.Rounds, note)
	}

	fmt.Println("\nbyzantine ants: adversaries recruit nestmates toward a bad site forever")
	fmt.Println("(full unanimity can flicker while kidnapping continues, so we report the")
	fmt.Println(" final share of correct ants committed to a good nest)")
	fmt.Printf("%8s  %12s  %s\n", "fraction", "goodShare", "verdict")
	for _, frac := range []float64{0, 0.02, 0.05, 0.1} {
		res, err := househunt.Run(
			househunt.WithColonySize(colony),
			househunt.WithBinaryNests(4, 2),
			househunt.WithAlgorithm(househunt.AlgorithmSimple),
			househunt.WithSeed(13),
			househunt.WithByzantineAnts(frac),
			househunt.WithMaxRounds(1500),
		)
		if err != nil {
			log.Fatal(err)
		}
		good := goodShare(res)
		verdict := "colony resists the lure"
		if good < 0.9 {
			verdict = "adversary visibly disrupts the census"
		}
		fmt.Printf("%8.2f  %12.3f  %s\n", frac, good, verdict)
	}
}

// goodShare computes the fraction of correct (non-faulty) ants committed to
// good nests at the end of the run. The example uses binary nests 1..2 good
// (WithBinaryNests(4, 2) marks the first two nests good).
func goodShare(res *househunt.Result) float64 {
	total, good := 0, 0
	for nestID, count := range res.Commitments {
		total += count
		if nestID == 1 || nestID == 2 {
			good += count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(good) / float64(total)
}
