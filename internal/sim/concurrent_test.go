package sim

import (
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

// buildColony constructs a deterministic mixed-behaviour colony for the
// equivalence tests.
func buildColony(t *testing.T, n int, seed uint64) *Engine {
	t.Helper()
	env := MustEnvironment([]float64{1, 0, 1, 0, 1})
	agents := make([]Agent, n)
	for i := range agents {
		agents[i] = &randomWalker{src: rng.New(seed).Split(uint64(i))}
	}
	e, err := New(env, agents, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestConcurrentMatchesSequential is the cross-mode oracle: the goroutine-
// per-ant execution must produce exactly the same end-of-round populations as
// the sequential engine for the same seed, round by round.
func TestConcurrentMatchesSequential(t *testing.T) {
	t.Parallel()
	const n, rounds = 48, 40
	seq := buildColony(t, n, 909)
	con := buildColony(t, n, 909)

	seqCounts := make([][]int, 0, rounds)
	for r := 0; r < rounds; r++ {
		if err := seq.Step(); err != nil {
			t.Fatal(err)
		}
		seqCounts = append(seqCounts, seq.Counts())
	}

	round := 0
	_, err := con.RunConcurrent(rounds, func(e *Engine) bool {
		for i, c := range e.Counts() {
			if c != seqCounts[round][i] {
				t.Fatalf("round %d nest %d: concurrent %d != sequential %d",
					round+1, i, c, seqCounts[round][i])
			}
		}
		round++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if round != rounds {
		t.Fatalf("concurrent run completed %d rounds, want %d", round, rounds)
	}
}

func TestRunConcurrentUntil(t *testing.T) {
	t.Parallel()
	e := buildColony(t, 8, 11)
	rounds, err := e.RunConcurrent(100, func(e *Engine) bool { return e.Round() >= 7 })
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 7 {
		t.Fatalf("stopped at %d, want 7", rounds)
	}
}

func TestRunConcurrentValidation(t *testing.T) {
	t.Parallel()
	e := buildColony(t, 4, 12)
	if _, err := e.RunConcurrent(0, nil); err == nil {
		t.Fatal("zero maxRounds accepted")
	}
}

func TestRunConcurrentPropagatesProtocolError(t *testing.T) {
	t.Parallel()
	env := MustEnvironment([]float64{1})
	e, err := New(env, agentsOf(scripted(Goto(1)))) // go before any visit
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunConcurrent(5, nil); err == nil {
		t.Fatal("protocol violation not propagated from concurrent run")
	}
	// Engine must be poisoned and joinable a second time without hanging.
	if _, err := e.RunConcurrent(5, nil); err == nil {
		t.Fatal("poisoned engine accepted concurrent run")
	}
}

func TestRunConcurrentThenSequential(t *testing.T) {
	t.Parallel()
	// Modes can be interleaved on one engine: rounds 1-10 concurrent,
	// rounds 11-20 sequential, against a pure-sequential twin.
	mixed := buildColony(t, 32, 313)
	pure := buildColony(t, 32, 313)

	if _, err := mixed.RunConcurrent(10, nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if err := mixed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 20; r++ {
		if err := pure.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range mixed.Counts() {
		if c != pure.Count(NestID(i)) {
			t.Fatalf("nest %d: mixed %d != pure %d", i, c, pure.Count(NestID(i)))
		}
	}
}
