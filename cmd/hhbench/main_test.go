package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	ids := strings.Fields(out.String())
	if len(ids) != 21 || ids[0] != "E1" {
		t.Fatalf("listed ids = %v", ids)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1", "-scale", "small"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SHAPE HOLDS") {
		t.Fatalf("output missing verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Lemma 2.1") {
		t.Fatalf("output missing claim:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "gigantic"}, &out); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-engine", "warp"}, &out); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run([]string{"-json"}, &out); err == nil {
		t.Fatal("-json without -batchbench accepted")
	}
}

// TestBatchBenchJSONRecords runs a shrunken batch benchmark and checks the
// machine-readable BENCH records: one per (algorithm, engine) cell, with the
// batch cells carrying a positive speedup. The published sizing is exercised
// by hand via `hhbench -batchbench`; this pins the record schema.
func TestBatchBenchJSONRecords(t *testing.T) {
	var out bytes.Buffer
	bb := batchBenchConfig{n: 64, k: 4, good: 2, reps: 4, maxRounds: 2000, minTime: time.Millisecond, json: true}
	if err := runBatchBench(&out, bb); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&out)
	var recs []benchRecord
	for dec.More() {
		var rec benchRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 14 {
		t.Fatalf("got %d BENCH records, want 14:\n%+v", len(recs), recs)
	}
	wantCells := []struct{ algorithm, engine string }{
		{"simple", "scalar"}, {"simple", "batch"},
		{"optimal", "scalar"}, {"optimal", "batch"},
		{"adaptive", "scalar"}, {"adaptive", "batch"},
		{"quality", "scalar"}, {"quality", "batch"},
		{"approxn(δ=0.2)", "scalar"}, {"approxn(δ=0.2)", "batch"},
		{"quorum(M=1.5)", "scalar"}, {"quorum(M=1.5)", "batch"},
		{"noisy[relative(σ=0.1),exact]", "scalar"}, {"noisy[relative(σ=0.1),exact]", "batch"},
	}
	for i, rec := range recs {
		if rec.Type != "BENCH" {
			t.Errorf("record %d: type %q, want BENCH", i, rec.Type)
		}
		if rec.Algorithm != wantCells[i].algorithm || rec.Engine != wantCells[i].engine {
			t.Errorf("record %d: cell %s/%s, want %s/%s",
				i, rec.Algorithm, rec.Engine, wantCells[i].algorithm, wantCells[i].engine)
		}
		if rec.N != bb.n || rec.K != bb.k || rec.Reps != bb.reps {
			t.Errorf("record %d: sizing %+v does not match config", i, rec)
		}
		if rec.AntStepsPerSec <= 0 || rec.MsPerSweep <= 0 {
			t.Errorf("record %d: non-positive throughput: %+v", i, rec)
		}
		isBatch := rec.Engine == "batch"
		if isBatch && rec.Speedup <= 0 {
			t.Errorf("record %d: batch cell missing speedup: %+v", i, rec)
		}
		if !isBatch && rec.Speedup != 0 {
			t.Errorf("record %d: scalar cell carries a speedup: %+v", i, rec)
		}
	}
}

// TestRunEngineScalar forces the scalar replicate loop; the experiment must
// still regenerate and pass (the batch path is bit-identical, so either
// engine yields the same table).
func TestRunEngineScalar(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engine", "scalar", "-exp", "E2", "-scale", "small"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SHAPE HOLDS") {
		t.Fatalf("output missing verdict:\n%s", out.String())
	}
}
