// Command hhtrace runs a traced house-hunting execution and exports the
// per-round history as CSV or JSON, for plotting population dynamics with
// external tools.
//
// Examples:
//
//	hhtrace -n 512 -k 4 -good 2 -algo simple -format csv > run.csv
//	hhtrace -n 512 -k 4 -good 4 -algo optimal -format json > run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/gmrl/househunt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hhtrace:", err)
		os.Exit(1)
	}
}

// run executes one traced colony and exports it; split for testability.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hhtrace", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 256, "colony size")
		k        = fs.Int("k", 4, "number of candidate nests")
		good     = fs.Int("good", 1, "number of good nests")
		algoName = fs.String("algo", "simple", "algorithm name")
		seed     = fs.Uint64("seed", 1, "random seed")
		rounds   = fs.Int("rounds", 0, "round budget (0 = automatic)")
		format   = fs.String("format", "csv", "output format: csv or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := househunt.Run(
		househunt.WithColonySize(*n),
		househunt.WithBinaryNests(*k, *good),
		househunt.WithAlgorithm(househunt.Algorithm(*algoName)),
		househunt.WithSeed(*seed),
		househunt.WithMaxRounds(*rounds),
		househunt.WithTracing(),
	)
	if err != nil {
		return err
	}
	switch *format {
	case "csv":
		if err := res.WriteCSV(out); err != nil {
			return err
		}
	case "json":
		if err := res.WriteJSON(out); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	fmt.Fprintln(os.Stderr, res.Summary())
	return nil
}
