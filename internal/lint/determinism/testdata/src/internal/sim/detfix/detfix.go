// Package detfix sits on an import path inside the analyzer's default
// scope (internal/sim) and exercises every determinism rule: banned
// randomness imports, map iteration order, and wall-clock reads, each
// with a flagged and an exempted form.
package detfix

import (
	"math/rand" // want "import of math/rand: engine packages must draw only"
	"sort"
	"time"
)

func mapOrder(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "map range iteration order is nondeterministic"
		keys = append(keys, k)
	}
	sort.Strings(keys)

	//hh:sorted collection order is discarded: keys are sorted before use
	for k := range m {
		_ = k
	}

	for _, k := range keys { // slice range: deterministic, allowed
		_ = k
	}
	return keys
}

func clock() int64 {
	t := time.Now() // want "time.Now reads the wall clock"

	//hh:wallclock benchmark plumbing only; never feeds simulation state
	t2 := time.Now()

	d := time.Duration(0)
	_ = d
	return t.Unix() + t2.Unix() + int64(rand.Int())
}
