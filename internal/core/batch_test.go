package core

import (
	"strings"
	"testing"

	"github.com/gmrl/househunt/internal/metrics"
	"github.com/gmrl/househunt/internal/rng"
	"github.com/gmrl/househunt/internal/sim"
	"github.com/gmrl/househunt/internal/trace"
)

// compilableOracle is a minimal BatchCompilable: it exposes a trivial
// lockstep program so CompileForBatch's cfg gating can be probed without
// depending on the algo package (core must not import it).
type compilableOracle struct{ decline bool }

func (compilableOracle) Name() string { return "oracle" }

func (compilableOracle) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	return nil, nil
}

func (c compilableOracle) CompileBatch(n int, env sim.Environment) (sim.Program, bool) {
	if c.decline {
		return sim.Program{}, false
	}
	return sim.Program{
		Algorithm: "oracle",
		States: []sim.ProgramState{
			{Emit: sim.EmitSearch, Observe: sim.ObserveDiscovery, Next: 0},
		},
	}, true
}

// TestCompileForBatchReasons pins the fallback diagnostics: every scalar-only
// cfg field and every algorithm-side refusal must name itself in the returned
// reason, and an eligible pair must return an empty reason — the "why is this
// sweep slow" contract.
func TestCompileForBatchReasons(t *testing.T) {
	t.Parallel()
	env := sim.MustEnvironment([]float64{1, 0})
	base := RunConfig{N: 16, Env: env}
	tr := trace.New(2)
	cases := []struct {
		name string
		algo Algorithm
		cfg  RunConfig
		want string
	}{
		{"nil algorithm", nil, base, "no algorithm"},
		{"bad colony", compilableOracle{}, RunConfig{N: 0, Env: env}, "colony size"},
		{"empty environment", compilableOracle{}, RunConfig{N: 8}, "empty environment"},
		{"wrap", compilableOracle{}, func() RunConfig {
			c := base
			c.Wrap = func(a []sim.Agent) ([]sim.Agent, error) { return a, nil }
			return c
		}(), "cfg.Wrap"},
		{"trace", compilableOracle{}, func() RunConfig {
			c := base
			c.Trace = tr
			return c
		}(), "cfg.Trace"},
		{"metrics", compilableOracle{}, func() RunConfig {
			c := base
			c.Metrics = metrics.NewRegistry()
			return c
		}(), "cfg.Metrics"},
		{"matcher", compilableOracle{}, func() RunConfig {
			c := base
			c.NewMatcher = func() sim.Matcher { return &sim.AlgorithmOneMatcher{} }
			return c
		}(), "custom matchers are scalar-only"},
		{"concurrent", compilableOracle{}, func() RunConfig {
			c := base
			c.Concurrent = true
			return c
		}(), "cfg.Concurrent"},
		{"not compilable", stubAlgorithm{}, base, "does not implement core.BatchCompilable"},
		{"declined", compilableOracle{decline: true}, base, "declined to compile"},
	}
	for _, tc := range cases {
		_, ok, reason := CompileForBatch(tc.algo, tc.cfg)
		if ok {
			t.Errorf("%s: unexpectedly batch-eligible", tc.name)
			continue
		}
		if !strings.Contains(reason, tc.want) {
			t.Errorf("%s: reason %q does not mention %q", tc.name, reason, tc.want)
		}
	}
	if _, ok, reason := CompileForBatch(compilableOracle{}, base); !ok || reason != "" {
		t.Errorf("eligible pair: ok=%v reason=%q, want true and empty", ok, reason)
	}

	// The custom-matcher reason must distinguish "your matcher is scalar-only"
	// from the compiled default pairing: the batch engine inlines Algorithm 1
	// including the carry-aware transport form, so the message names it rather
	// than implying no batched matching exists at all.
	matcherCfg := base
	matcherCfg.NewMatcher = func() sim.Matcher { return &sim.SimultaneousMatcher{} }
	if _, _, reason := CompileForBatch(compilableOracle{}, matcherCfg); !strings.Contains(reason, "Algorithm 1") || !strings.Contains(reason, "carry-aware") {
		t.Errorf("matcher reason %q does not name the compiled Algorithm 1 carry-aware pairing", reason)
	}
}

// stubAlgorithm is an Algorithm without a compiled form.
type stubAlgorithm struct{}

func (stubAlgorithm) Name() string { return "stub" }

func (stubAlgorithm) Build(n int, env sim.Environment, src *rng.Source) ([]sim.Agent, error) {
	return nil, nil
}
