package stats

import (
	"math"
	"testing"

	"github.com/gmrl/househunt/internal/rng"
)

func TestFitLinearExact(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 3, 1e-12) || !almostEqual(fit.Intercept, -7, 1e-12) {
		t.Fatalf("fit = %+v, want slope 3 intercept -7", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	t.Parallel()
	src := rng.New(404)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*xs[i] + 5 + src.NormFloat64()*3
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 0.05 {
		t.Fatalf("slope = %v, want ~2", fit.Slope)
	}
	if fit.R2 < 0.98 {
		t.Fatalf("R2 = %v, want > 0.98", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	t.Parallel()
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("zero x-variance accepted")
	}
}

func TestFitLinearConstantY(t *testing.T) {
	t.Parallel()
	fit, err := FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0, 1e-12) || !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("constant fit = %+v", fit)
	}
}

func TestFitLogN(t *testing.T) {
	t.Parallel()
	// rounds = 4*log2(n) + 2 exactly.
	ns := []float64{256, 1024, 4096, 16384, 65536}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 4*math.Log2(n) + 2
	}
	fit, err := FitLogN(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 4, 1e-9) || !almostEqual(fit.Intercept, 2, 1e-9) {
		t.Fatalf("FitLogN = %+v", fit)
	}
	if _, err := FitLogN([]float64{-1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestFitKLogN(t *testing.T) {
	t.Parallel()
	ks := []float64{2, 4, 8, 2, 4, 8}
	ns := []float64{1024, 1024, 1024, 65536, 65536, 65536}
	ys := make([]float64, len(ks))
	for i := range ks {
		ys[i] = 1.5*ks[i]*math.Log2(ns[i]) + 3
	}
	fit, err := FitKLogN(ks, ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 1.5, 1e-9) || !almostEqual(fit.Intercept, 3, 1e-9) {
		t.Fatalf("FitKLogN = %+v", fit)
	}
	if _, err := FitKLogN([]float64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPearsonR(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4}
	up := []float64{2, 4, 6, 8}
	down := []float64{8, 6, 4, 2}
	r, err := PearsonR(xs, up)
	if err != nil || !almostEqual(r, 1, 1e-9) {
		t.Fatalf("PearsonR up = %v, %v", r, err)
	}
	r, err = PearsonR(xs, down)
	if err != nil || !almostEqual(r, -1, 1e-9) {
		t.Fatalf("PearsonR down = %v, %v", r, err)
	}
}

func TestLinearFitString(t *testing.T) {
	t.Parallel()
	s := LinearFit{Slope: 2, Intercept: -1, R2: 0.99, N: 10}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
